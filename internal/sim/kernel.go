// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel is the substrate for every timed model in this repository:
// network fabrics, node compute models, the message-passing layer, the
// batch scheduler, and the fault/checkpoint simulator all advance a shared
// virtual clock by scheduling events on a Kernel.
//
// Determinism: events that fire at the same virtual time are executed in
// the order they were scheduled (a monotonic sequence number breaks ties),
// and all randomness flows from a caller-supplied seed. Two runs with the
// same seed produce bit-identical event orderings, which keeps every
// experiment in this repository reproducible. The ordering contract is a
// total order on (at, seq) — it holds identically on every queue backend,
// so the choice of backend never changes simulation output.
//
// Performance: the event queue is the hot path of every simulation, so it
// avoids allocating on it. Scheduling pushes a value-type entry onto one of
// two backends — a hand-rolled 4-ary min-heap for sparse schedules, or a
// calendar queue (bucketed sliding time window, see queue_calendar.go) once
// pending-event density makes heap sift chains the cost center — event
// payloads are recycled through a free list, cancelled events are deleted
// lazily with the queue compacted once dead entries outnumber live ones,
// and events scheduled at the current virtual time — the dominant case for
// process handoff — bypass the queue entirely via a FIFO.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
)

// Time is a point in virtual time, in seconds. Virtual time is unrelated
// to wall-clock time: a simulated microsecond costs whatever the host
// needs to execute the event handlers, no more.
type Time float64

// Common durations, as Time deltas.
const (
	Nanosecond  Time = 1e-9
	Microsecond Time = 1e-6
	Millisecond Time = 1e-3
	Second      Time = 1
	Minute      Time = 60
	Hour        Time = 3600
	Day         Time = 86400
	Year        Time = 365.25 * 86400
)

// Forever is a time later than any event a simulation will schedule.
const Forever Time = math.MaxFloat64

// Seconds reports t as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) }

// String formats the time with an auto-selected unit.
func (t Time) String() string {
	switch abs := math.Abs(float64(t)); {
	case t == Forever:
		return "forever"
	case abs == 0:
		return "0s"
	case abs < 1e-6:
		return fmt.Sprintf("%.3gns", float64(t)*1e9)
	case abs < 1e-3:
		return fmt.Sprintf("%.3gµs", float64(t)*1e6)
	case abs < 1:
		return fmt.Sprintf("%.3gms", float64(t)*1e3)
	case abs < 120:
		return fmt.Sprintf("%.4gs", float64(t))
	case abs < 2*3600:
		return fmt.Sprintf("%.4gmin", float64(t)/60)
	case abs < 2*86400:
		return fmt.Sprintf("%.4gh", float64(t)/3600)
	default:
		return fmt.Sprintf("%.4gd", float64(t)/86400)
	}
}

// event is the pooled payload of one scheduled event. Queue entries point
// at an event; after it fires or its cancellation is drained, the payload
// returns to the kernel's free list with its generation bumped, which
// invalidates any Handle still referring to it.
type event struct {
	fn    func()
	gen   uint32
	inNow bool // queued on the same-time fast path, not the future queue
}

// Handle identifies a scheduled event and allows cancelling it before it
// fires. The zero Handle is invalid.
type Handle struct {
	k   *Kernel
	ev  *event
	gen uint32
}

// Cancel removes the event from the schedule. Cancelling an event that has
// already fired or been cancelled is a no-op. Cancel reports whether the
// event was still pending.
func (h Handle) Cancel() bool {
	if h.ev == nil || h.gen != h.ev.gen || h.ev.fn == nil {
		return false
	}
	h.ev.fn = nil // lazy deletion; the queue entry stays until drained
	k := h.k
	if h.ev.inNow {
		k.nowDead++
	} else {
		k.dead++
	}
	if k.probe != nil {
		k.probe.EventCancelled(k.now, k.Live())
	}
	if !h.ev.inNow && k.dead*2 > k.qsize() && k.qsize() >= compactMin {
		k.compactQueue()
	}
	return true
}

// Pending reports whether the event has not yet fired or been cancelled.
func (h Handle) Pending() bool {
	return h.ev != nil && h.gen == h.ev.gen && h.ev.fn != nil
}

// entry is one queued future event, ordered by (at, seq).
type entry struct {
	at  Time
	seq uint64
	ev  *event
}

func entryLess(a, b entry) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// compactMin is the minimum queue size at which cancellation-driven
// compaction kicks in; below it, lazy draining is cheap enough.
const compactMin = 64

// QueueKind selects the event-queue backend of a Kernel.
type QueueKind uint8

const (
	// QueueAuto starts on the 4-ary heap and switches to the calendar
	// queue once pending-event density crosses autoCalendarThreshold.
	// This is the default: shallow schedules stay on the heap (where a
	// wheel would be overhead), dense ones get bucketed pops.
	QueueAuto QueueKind = iota
	// QueueHeap pins the kernel to the 4-ary min-heap.
	QueueHeap
	// QueueCalendar pins the kernel to the calendar queue.
	QueueCalendar
)

// String names the kind as accepted by ParseQueueKind.
func (q QueueKind) String() string {
	switch q {
	case QueueHeap:
		return "heap"
	case QueueCalendar:
		return "calendar"
	default:
		return "auto"
	}
}

// ParseQueueKind parses "auto", "heap", or "calendar".
func ParseQueueKind(s string) (QueueKind, error) {
	switch s {
	case "auto":
		return QueueAuto, nil
	case "heap":
		return QueueHeap, nil
	case "calendar":
		return QueueCalendar, nil
	}
	return QueueAuto, fmt.Errorf("sim: unknown queue kind %q (want auto, heap, or calendar)", s)
}

// autoCalendarThreshold is the pending-event count at which a QueueAuto
// kernel migrates from the heap to the calendar queue. At this depth heap
// sift chains span several cache-missing levels while the calendar's runs
// stay short; below it the heap's simplicity wins.
const autoCalendarThreshold = 1024

// defaultQueue is the process-global QueueKind used by New. CI uses it
// (via the -queue flag on cmd/experiments) to run the whole suite pinned
// to one backend and prove the outputs byte-identical.
var defaultQueue atomic.Uint32

// SetDefaultQueue sets the backend New gives future kernels.
func SetDefaultQueue(kind QueueKind) { defaultQueue.Store(uint32(kind)) }

// DefaultQueue reports the backend New currently gives kernels.
func DefaultQueue() QueueKind { return QueueKind(defaultQueue.Load()) }

// Kernel is a discrete-event simulation engine. A Kernel is not safe for
// concurrent use; all interaction must happen from the goroutine driving
// Run (event handlers run on that goroutine, and Proc coroutines run only
// while the kernel is parked waiting for them — see proc.go).
type Kernel struct {
	now Time

	// Future-event queue: exactly one backend is active. onCal selects;
	// qh is always non-nil, qc is built on first use. Dispatching on the
	// concrete types keeps the dominant heap path inlineable.
	qh      *heapQueue
	qc      *calendarQueue
	onCal   bool
	kindCfg QueueKind
	dead    int // cancelled future events still occupying queue slots

	// nowq is the fast path for events scheduled at the current virtual
	// time: they cannot be preceded by anything except earlier-scheduled
	// events also due now, so FIFO order is (at, seq) order and no queue
	// insert is needed. qhead indexes the first undrained entry.
	nowq    []*event
	qhead   int
	nowDead int // cancelled nowq entries not yet drained

	free    []*event // payload free list; bounded by peak pending events
	seq     uint64
	seed    int64 // construction seed, replayed by Reset
	rng     *rand.Rand
	fired   uint64
	stopped bool

	// probe, when non-nil, observes scheduling activity (see probe.go).
	// Every call site is guarded by one nil-check so the unobserved hot
	// path is unchanged.
	probe Probe

	procs int // Proc id allocator (see proc.go)
}

// New returns a Kernel with its clock at zero and randomness seeded from
// seed, on the process-default queue backend (QueueAuto unless
// SetDefaultQueue changed it). The same seed yields an identical
// simulation on any backend.
func New(seed int64) *Kernel { return NewOnQueue(seed, DefaultQueue()) }

// NewOnQueue is New with an explicit queue backend.
func NewOnQueue(seed int64, kind QueueKind) *Kernel {
	k := &Kernel{
		seed:    seed,
		rng:     rand.New(rand.NewSource(seed)),
		qh:      &heapQueue{},
		kindCfg: kind,
	}
	if kind == QueueCalendar {
		k.qc = &calendarQueue{}
		k.onCal = true
	}
	if h := kernelHook.Load(); h != nil {
		(*h)(k)
	}
	return k
}

// QueueConfigured reports the backend this kernel was constructed with.
func (k *Kernel) QueueConfigured() QueueKind { return k.kindCfg }

// QueueActive reports the backend currently holding future events: for a
// QueueAuto kernel this starts as QueueHeap and becomes QueueCalendar
// after the density switch.
func (k *Kernel) QueueActive() QueueKind {
	if k.onCal {
		return QueueCalendar
	}
	return QueueHeap
}

// Reset returns the kernel to the state New(seed) produced: clock at
// zero, empty schedule, randomness re-seeded, Fired back to zero. It
// lets a built simulation (a machine with its fabric) be reused across
// runs instead of reconstructed. Reset panics if events are still
// pending: it is for reusing a kernel after a drained Run, not for
// aborting one (a Proc parked in Suspend would likewise outlive the
// reset — finish or interrupt procs first). The event free list and
// queue storage survive, so the reused kernel also skips its warm-up
// allocations. A QueueAuto kernel drops back to the heap backend, like a
// fresh kernel.
func (k *Kernel) Reset() {
	k.drainDead()
	if k.Pending() > 0 {
		panic(fmt.Sprintf("sim: Reset with %d events still pending", k.Pending()))
	}
	k.now = 0
	k.qh.reset()
	if k.qc != nil {
		k.qc.reset()
	}
	k.onCal = k.kindCfg == QueueCalendar
	k.nowq = k.nowq[:0]
	k.qhead = 0
	k.dead = 0
	k.nowDead = 0
	k.seq = 0
	k.fired = 0
	k.stopped = false
	k.procs = 0
	k.rng = rand.New(rand.NewSource(k.seed))
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Fired reports how many events have executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// Pending reports how many events are scheduled, including lazily
// cancelled entries not yet drained. For queue-depth telemetry use Live,
// which excludes them.
func (k *Kernel) Pending() int { return k.qsize() + len(k.nowq) - k.qhead }

// Live reports how many scheduled events will actually fire: Pending
// minus entries cancelled but not yet drained from either queue.
func (k *Kernel) Live() int { return k.Pending() - k.dead - k.nowDead }

// ---- queue dispatch ----

func (k *Kernel) qsize() int {
	if k.onCal {
		return k.qc.size()
	}
	return k.qh.size()
}

func (k *Kernel) qmin() *entry {
	if k.onCal {
		return k.qc.min()
	}
	return k.qh.min()
}

func (k *Kernel) qpop() entry {
	if k.onCal {
		return k.qc.pop()
	}
	return k.qh.pop()
}

func (k *Kernel) qpush(e entry) {
	if k.onCal {
		k.qc.push(e)
		return
	}
	k.qh.push(e)
	if k.kindCfg == QueueAuto && k.qh.size() >= autoCalendarThreshold {
		k.switchToCalendar()
	}
}

// switchToCalendar migrates a QueueAuto kernel to the calendar backend.
// The heap's backing array is already a valid 4-ary heap, so it moves
// wholesale into the calendar's overflow; the calendar's first rebuild
// shapes the window from the real distribution. Entry order is the same
// (at, seq) total order on both sides, so the switch is invisible in the
// event sequence.
func (k *Kernel) switchToCalendar() {
	if k.qc == nil {
		k.qc = &calendarQueue{}
	}
	k.qc.over.h = append(k.qc.over.h[:0], k.qh.h...)
	k.qh.reset()
	k.onCal = true
}

// activeQueue returns the live backend behind the eventQueue interface,
// for cold paths and tests.
func (k *Kernel) activeQueue() eventQueue {
	if k.onCal {
		return k.qc
	}
	return k.qh
}

// ---- scheduling ----

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past (or at a NaN time) panics: a discrete-event simulation must never
// travel backwards.
func (k *Kernel) At(t Time, fn func()) Handle {
	if !(t >= k.now) {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	ev := k.newEvent(fn)
	k.seq++
	if t == k.now {
		// Same-time fast path. Any queued entry due at t was scheduled
		// before the clock reached t, so it carries a smaller seq than
		// this event and Step drains the queue first; among nowq entries
		// FIFO order equals seq order.
		ev.inNow = true
		k.nowq = append(k.nowq, ev)
	} else {
		k.qpush(entry{at: t, seq: k.seq, ev: ev})
	}
	if k.probe != nil {
		k.probe.EventScheduled(t, k.Live(), ev.inNow)
	}
	return Handle{k: k, ev: ev, gen: ev.gen}
}

// After schedules fn to run d seconds from now. Negative d panics.
func (k *Kernel) After(d Time, fn func()) Handle { return k.At(k.now+d, fn) }

// Stop makes Run return after the current event completes. Pending events
// remain scheduled; Run may be called again to continue.
func (k *Kernel) Stop() { k.stopped = true }

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (k *Kernel) Step() bool {
	k.drainDead()
	var ev *event
	if m := k.qmin(); m != nil && (m.at == k.now || k.qhead == len(k.nowq)) {
		e := k.qpop()
		k.now = e.at
		ev = e.ev
	} else if k.qhead < len(k.nowq) {
		ev = k.popNow()
	} else {
		return false
	}
	fn := ev.fn
	k.recycle(ev)
	k.fired++
	if k.probe != nil {
		k.probe.EventFired(k.now, k.Live())
	}
	fn()
	return true
}

// Run executes events until none remain or Stop is called. It returns the
// final virtual time.
func (k *Kernel) Run() Time {
	k.stopped = false
	for !k.stopped && k.Step() {
	}
	return k.now
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to exactly t (if the simulation had not already passed it) and returns.
// Events scheduled after t remain pending.
func (k *Kernel) RunUntil(t Time) Time {
	k.stopped = false
	for !k.stopped {
		next, ok := k.peek()
		if !ok || next > t {
			break
		}
		k.Step()
	}
	if k.now < t {
		k.now = t
	}
	return k.now
}

// peek returns the timestamp of the next live event.
func (k *Kernel) peek() (Time, bool) {
	k.drainDead()
	if k.qhead < len(k.nowq) {
		return k.now, true
	}
	if m := k.qmin(); m != nil {
		return m.at, true
	}
	return 0, false
}

// NextEventAt returns the time of the next pending event, if any.
func (k *Kernel) NextEventAt() (Time, bool) { return k.peek() }

// ---- event pool ----

func (k *Kernel) newEvent(fn func()) *event {
	if n := len(k.free); n > 0 {
		ev := k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		ev.fn = fn
		ev.inNow = false
		return ev
	}
	return &event{fn: fn}
}

// recycle returns a drained payload to the free list. Bumping the
// generation invalidates outstanding Handles before the payload is reused.
func (k *Kernel) recycle(ev *event) {
	ev.fn = nil
	ev.gen++
	k.free = append(k.free, ev)
}

// ---- queues ----

// drainDead recycles cancelled entries sitting at the front of either
// queue so Step and peek see a live minimum.
func (k *Kernel) drainDead() {
	for k.dead > 0 {
		m := k.qmin()
		if m == nil || m.ev.fn != nil {
			break
		}
		k.recycle(k.qpop().ev)
		k.dead--
	}
	for k.qhead < len(k.nowq) && k.nowq[k.qhead].fn == nil {
		k.recycle(k.popNow())
		k.nowDead--
	}
}

// popNow removes and returns the front of the same-time queue.
func (k *Kernel) popNow() *event {
	ev := k.nowq[k.qhead]
	k.nowq[k.qhead] = nil
	k.qhead++
	if k.qhead == len(k.nowq) {
		k.nowq = k.nowq[:0]
		k.qhead = 0
	}
	return ev
}

// compactQueue removes all cancelled entries from the future queue.
// Triggered from Cancel once dead entries outnumber live ones.
func (k *Kernel) compactQueue() {
	removed := k.activeQueue().compact(k.recycle)
	k.dead = 0
	if k.probe != nil {
		k.probe.HeapCompacted(k.now, removed, k.qsize())
	}
}
