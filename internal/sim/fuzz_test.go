package sim

import (
	"sort"
	"testing"
)

// FuzzKernelOps drives the kernel's hot path — heap scheduling, the
// same-time FIFO fast path, lazy cancellation, compaction — from a fuzzed
// op stream and checks it against a trivially correct reference model: a
// flat slice of (time, scheduling-index) pairs sorted stably. The kernel
// promises events fire in (time, seq) order with FIFO ties, cancelled
// events never fire, Cancel/Pending report the truth, and the clock never
// runs backwards; any heap or free-list bug that breaks one of those
// shows up as an order or bookkeeping diff.
//
// The op stream executes *inside* kernel events (a driver chain), so
// scheduling happens both before the clock reaches an event's time (heap
// path) and exactly at it (nowq fast path), like real simulations.
func FuzzKernelOps(f *testing.F) {
	// Seeds: pure same-time scheduling, a cancel-heavy stream (drives
	// compaction), mixed deltas, time advances between bursts.
	f.Add([]byte{0, 0, 0, 0, 0, 0})
	f.Add([]byte{0, 5, 1, 3, 4, 0, 0, 2, 4, 1, 4, 2})
	f.Add([]byte{0, 10, 7, 4, 0, 0, 7, 9, 2, 200, 4, 0, 6, 1})
	f.Add([]byte{1, 1, 1, 1, 4, 0, 4, 1, 4, 2, 4, 3, 4, 4, 4, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			data = data[:512] // bound per-input work
		}
		k := New(1)

		type payload struct {
			id        int
			at        Time
			h         Handle
			cancelled bool
			fired     bool
		}
		var model []*payload
		var fired []int
		lastNow := k.Now()

		i := 0
		var step func()
		step = func() {
			if k.Now() < lastNow {
				t.Fatalf("clock ran backwards: %v after %v", k.Now(), lastNow)
			}
			lastNow = k.Now()
			if i+1 >= len(data) {
				return
			}
			op, arg := data[i]%8, int(data[i+1])
			i += 2
			next := Time(0) // next driver step: same-time unless op 7
			switch op {
			case 0, 1, 2, 3: // schedule a payload arg microseconds out
				p := &payload{id: len(model), at: k.Now() + Time(arg)*Microsecond}
				p.h = k.After(Time(arg)*Microsecond, func() {
					if p.fired || p.cancelled {
						t.Fatalf("payload %d fired twice or after cancel", p.id)
					}
					p.fired = true
					fired = append(fired, p.id)
				})
				model = append(model, p)
			case 4, 5: // cancel the arg-th payload; Cancel must tell the truth
				if len(model) == 0 {
					break
				}
				p := model[arg%len(model)]
				want := !p.fired && !p.cancelled
				if got := p.h.Cancel(); got != want {
					t.Fatalf("payload %d: Cancel() = %v, model says %v (fired=%v cancelled=%v)",
						p.id, got, want, p.fired, p.cancelled)
				}
				if want {
					p.cancelled = true
				}
			case 6: // Pending must agree with the model
				if len(model) == 0 {
					break
				}
				p := model[arg%len(model)]
				if want := !p.fired && !p.cancelled; p.h.Pending() != want {
					t.Fatalf("payload %d: Pending() = %v, model says %v", p.id, p.h.Pending(), want)
				}
			case 7: // advance the driver clock
				next = Time(arg) * Microsecond
			}
			k.After(next, step)
		}
		k.After(0, step)
		k.Run()

		// Every live payload fired in (time, scheduling order); nothing
		// cancelled fired; nothing fired twice.
		var want []*payload
		for _, p := range model {
			if !p.cancelled {
				want = append(want, p)
			}
		}
		sort.SliceStable(want, func(a, b int) bool { return want[a].at < want[b].at })
		if len(fired) != len(want) {
			t.Fatalf("%d payloads fired, model expects %d", len(fired), len(want))
		}
		for j, p := range want {
			if fired[j] != p.id {
				t.Fatalf("firing position %d: payload %d, model expects %d (at=%v)", j, fired[j], p.id, p.at)
			}
		}
		if k.Pending() != 0 {
			t.Fatalf("%d events still pending after Run drained everything", k.Pending())
		}
		// A handle whose event fired or was cancelled must stay dead.
		for _, p := range model {
			if p.h.Pending() {
				t.Fatalf("payload %d still Pending after the run", p.id)
			}
			if p.h.Cancel() {
				t.Fatalf("payload %d: Cancel succeeded after the run", p.id)
			}
		}
	})
}
