package sim

import (
	"sort"
	"testing"
)

// opsResult is one backend's observable outcome of an op stream: the
// payload fire order plus the kernel's final accounting. The differential
// harness requires it to be identical on every queue backend.
type opsResult struct {
	fired   []int
	count   uint64
	pending int
	final   Time
}

// runKernelOps drives one kernel — pinned to the given queue backend —
// through the fuzzed op stream and checks it against a trivially correct
// reference model: a flat slice of (time, scheduling-index) pairs sorted
// stably. The kernel promises events fire in (time, seq) order with FIFO
// ties, cancelled events never fire, Cancel/Pending report the truth, and
// the clock never runs backwards; any queue bug that breaks one of those
// shows up as an order or bookkeeping diff.
//
// The op stream executes *inside* kernel events (a driver chain), so
// scheduling happens both before the clock reaches an event's time (queue
// path) and exactly at it (nowq fast path), like real simulations.
//
// Ops (op = byte%8, arg = next byte):
//
//	0, 1: schedule one payload arg microseconds out (near cluster)
//	2:    schedule an 8-payload monotone burst at +arg..+arg+7 µs
//	      (density — drives calendar bucket growth and the auto switch)
//	3:    schedule one payload arg*16 milliseconds out (far tail —
//	      bimodal with 0-2, drives calendar overflow and promotion)
//	4, 5: cancel the arg-th payload (lazy deletion, compaction)
//	6:    check the arg-th payload's Pending against the model
//	7:    advance the driver clock arg microseconds
func runKernelOps(t *testing.T, data []byte, kind QueueKind) opsResult {
	t.Helper()
	k := NewOnQueue(1, kind)

	type payload struct {
		id        int
		at        Time
		h         Handle
		cancelled bool
		fired     bool
	}
	var model []*payload
	var fired []int
	lastNow := k.Now()

	schedule := func(d Time) {
		p := &payload{id: len(model), at: k.Now() + d}
		p.h = k.After(d, func() {
			if p.fired || p.cancelled {
				t.Fatalf("[%v] payload %d fired twice or after cancel", kind, p.id)
			}
			p.fired = true
			fired = append(fired, p.id)
		})
		model = append(model, p)
	}

	i := 0
	var step func()
	step = func() {
		if k.Now() < lastNow {
			t.Fatalf("[%v] clock ran backwards: %v after %v", kind, k.Now(), lastNow)
		}
		lastNow = k.Now()
		if live := k.Live(); live < 0 || live > k.Pending() {
			t.Fatalf("[%v] Live() = %d outside [0, Pending()=%d]", kind, live, k.Pending())
		}
		if i+1 >= len(data) {
			return
		}
		op, arg := data[i]%8, int(data[i+1])
		i += 2
		next := Time(0) // next driver step: same-time unless op 7
		switch op {
		case 0, 1: // near: arg microseconds out
			schedule(Time(arg) * Microsecond)
		case 2: // dense monotone burst
			for j := 0; j < 8; j++ {
				schedule(Time(arg+j) * Microsecond)
			}
		case 3: // far tail: arg*16 ms out (calendar overflow territory)
			schedule(Time(arg) * 16 * Millisecond)
		case 4, 5: // cancel the arg-th payload; Cancel must tell the truth
			if len(model) == 0 {
				break
			}
			p := model[arg%len(model)]
			want := !p.fired && !p.cancelled
			if got := p.h.Cancel(); got != want {
				t.Fatalf("[%v] payload %d: Cancel() = %v, model says %v (fired=%v cancelled=%v)",
					kind, p.id, got, want, p.fired, p.cancelled)
			}
			if want {
				p.cancelled = true
			}
		case 6: // Pending must agree with the model
			if len(model) == 0 {
				break
			}
			p := model[arg%len(model)]
			if want := !p.fired && !p.cancelled; p.h.Pending() != want {
				t.Fatalf("[%v] payload %d: Pending() = %v, model says %v", kind, p.id, p.h.Pending(), want)
			}
		case 7: // advance the driver clock
			next = Time(arg) * Microsecond
		}
		k.After(next, step)
	}
	k.After(0, step)
	final := k.Run()

	// Every live payload fired in (time, scheduling order); nothing
	// cancelled fired; nothing fired twice.
	var want []*payload
	for _, p := range model {
		if !p.cancelled {
			want = append(want, p)
		}
	}
	sort.SliceStable(want, func(a, b int) bool { return want[a].at < want[b].at })
	if len(fired) != len(want) {
		t.Fatalf("[%v] %d payloads fired, model expects %d", kind, len(fired), len(want))
	}
	for j, p := range want {
		if fired[j] != p.id {
			t.Fatalf("[%v] firing position %d: payload %d, model expects %d (at=%v)", kind, j, fired[j], p.id, p.at)
		}
	}
	if k.Pending() != 0 {
		t.Fatalf("[%v] %d events still pending after Run drained everything", kind, k.Pending())
	}
	if k.Live() != 0 {
		t.Fatalf("[%v] Live() = %d after Run drained everything", kind, k.Live())
	}
	// A handle whose event fired or was cancelled must stay dead.
	for _, p := range model {
		if p.h.Pending() {
			t.Fatalf("[%v] payload %d still Pending after the run", kind, p.id)
		}
		if p.h.Cancel() {
			t.Fatalf("[%v] payload %d: Cancel succeeded after the run", kind, p.id)
		}
	}
	return opsResult{fired: fired, count: k.Fired(), pending: k.Pending(), final: final}
}

// FuzzKernelOps is the differential backend fuzz target: every op stream
// runs on the pinned heap backend, the pinned calendar backend, and a
// QueueAuto kernel (which may migrate mid-run), each checked against the
// reference model — and then the three observable outcomes are required
// to be bit-identical. The ordering contract is a total order on
// (at, seq), so nothing about the backend may leak into fire order,
// Fired/Pending accounting, or the final clock.
func FuzzKernelOps(f *testing.F) {
	// Seeds: pure same-time scheduling, a cancel-heavy stream (drives
	// compaction), mixed deltas, time advances between bursts.
	f.Add([]byte{0, 0, 0, 0, 0, 0})
	f.Add([]byte{0, 5, 1, 3, 4, 0, 0, 2, 4, 1, 4, 2})
	f.Add([]byte{0, 10, 7, 4, 0, 0, 7, 9, 2, 200, 4, 0, 6, 1})
	f.Add([]byte{1, 1, 1, 1, 4, 0, 4, 1, 4, 2, 4, 3, 4, 4, 4, 5})
	// Far-tail stream: 24 overflow-range events with a near cluster in
	// between — exercises the calendar's overflow heap, the drain-time
	// rebuild, and bulk promotion into a reshaped window.
	far := []byte{}
	for j := 0; j < 24; j++ {
		far = append(far, 3, byte(7+j*11))
	}
	far = append(far, 0, 2, 0, 2, 7, 50)
	f.Add(far)
	// Density stream: ~70 monotone bursts (≈560 resident events) with
	// sparse cancels — exercises the calendar's density-driven bucket
	// resize and the QueueAuto heap-to-calendar migration, then drains
	// through a far advance.
	dense := []byte{}
	for j := 0; j < 70; j++ {
		dense = append(dense, 2, byte(j*3))
	}
	dense = append(dense, 4, 17, 4, 130, 7, 255, 7, 255)
	f.Add(dense)
	// Bimodal near/far interleave with cancels landing on both modes.
	bimodal := []byte{}
	for j := 0; j < 16; j++ {
		bimodal = append(bimodal, 0, byte(j), 3, byte(200-j*5), 4, byte(j*7))
	}
	f.Add(bimodal)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			data = data[:512] // bound per-input work
		}
		heap := runKernelOps(t, data, QueueHeap)
		cal := runKernelOps(t, data, QueueCalendar)
		auto := runKernelOps(t, data, QueueAuto)
		for _, other := range []struct {
			kind QueueKind
			res  opsResult
		}{{QueueCalendar, cal}, {QueueAuto, auto}} {
			if len(other.res.fired) != len(heap.fired) {
				t.Fatalf("%v fired %d payloads, heap fired %d", other.kind, len(other.res.fired), len(heap.fired))
			}
			for j := range heap.fired {
				if other.res.fired[j] != heap.fired[j] {
					t.Fatalf("%v diverged from heap at firing %d: payload %d vs %d",
						other.kind, j, other.res.fired[j], heap.fired[j])
				}
			}
			if other.res.count != heap.count || other.res.pending != heap.pending || other.res.final != heap.final {
				t.Fatalf("%v accounting diverged from heap: fired %d/%d, pending %d/%d, final %v/%v",
					other.kind, other.res.count, heap.count, other.res.pending, heap.pending,
					other.res.final, heap.final)
			}
		}
	})
}
