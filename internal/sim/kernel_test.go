package sim

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestKernelRunsEventsInTimeOrder(t *testing.T) {
	k := New(1)
	var got []Time
	for _, at := range []Time{5, 1, 3, 2, 4} {
		at := at
		k.At(at, func() { got = append(got, k.Now()) })
	}
	end := k.Run()
	if end != 5 {
		t.Fatalf("final time = %v, want 5", end)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("events out of order: %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestKernelTieBreakIsFIFO(t *testing.T) {
	k := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(7, func() { got = append(got, i) })
	}
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestKernelAfterAccumulates(t *testing.T) {
	k := New(1)
	var end Time
	k.After(1, func() {
		k.After(2, func() {
			end = k.Now()
		})
	})
	k.Run()
	if end != 3 {
		t.Fatalf("nested After ended at %v, want 3", end)
	}
}

func TestKernelPastSchedulingPanics(t *testing.T) {
	k := New(1)
	k.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(5, func() {})
	})
	k.Run()
}

func TestKernelCancel(t *testing.T) {
	k := New(1)
	fired := false
	h := k.At(1, func() { fired = true })
	if !h.Pending() {
		t.Fatal("handle not pending after schedule")
	}
	if !h.Cancel() {
		t.Fatal("first cancel reported false")
	}
	if h.Cancel() {
		t.Fatal("second cancel reported true")
	}
	k.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if k.Fired() != 0 {
		t.Fatalf("Fired = %d, want 0", k.Fired())
	}
}

func TestKernelStopAndContinue(t *testing.T) {
	k := New(1)
	var got []Time
	k.At(1, func() { got = append(got, 1); k.Stop() })
	k.At(2, func() { got = append(got, 2) })
	k.Run()
	if len(got) != 1 {
		t.Fatalf("after Stop, got %v", got)
	}
	k.Run()
	if len(got) != 2 || got[1] != 2 {
		t.Fatalf("after resume, got %v", got)
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := New(1)
	var got []Time
	for _, at := range []Time{1, 2, 3, 4} {
		at := at
		k.At(at, func() { got = append(got, at) })
	}
	k.RunUntil(2.5)
	if len(got) != 2 {
		t.Fatalf("RunUntil(2.5) ran %v", got)
	}
	if k.Now() != 2.5 {
		t.Fatalf("Now = %v, want 2.5", k.Now())
	}
	k.Run()
	if len(got) != 4 {
		t.Fatalf("remaining events lost: %v", got)
	}
}

func TestKernelRunUntilAdvancesIdleClock(t *testing.T) {
	k := New(1)
	k.RunUntil(100)
	if k.Now() != 100 {
		t.Fatalf("Now = %v, want 100", k.Now())
	}
}

func TestKernelDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		k := New(seed)
		var trace []Time
		var spawn func()
		n := 0
		spawn = func() {
			trace = append(trace, k.Now())
			n++
			if n < 200 {
				k.After(Time(k.Rand().Float64()), spawn)
				if k.Rand().Intn(2) == 0 {
					k.After(Time(k.Rand().Float64()*2), func() { trace = append(trace, k.Now()) })
				}
			}
		}
		k.After(0, spawn)
		k.Run()
		return trace
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: for any set of non-negative offsets, the kernel fires events
// in nondecreasing time order and fires all of them.
func TestKernelOrderingProperty(t *testing.T) {
	prop := func(offsets []uint16) bool {
		k := New(1)
		var fired []Time
		for _, off := range offsets {
			at := Time(off)
			k.At(at, func() { fired = append(fired, at) })
		}
		k.Run()
		if len(fired) != len(offsets) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		want := make([]Time, len(offsets))
		for i, off := range offsets {
			want[i] = Time(off)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset of events fires exactly the others.
func TestKernelCancelProperty(t *testing.T) {
	prop := func(offsets []uint8, mask []bool) bool {
		k := New(1)
		fired := make(map[int]bool)
		handles := make([]Handle, len(offsets))
		for i, off := range offsets {
			i := i
			handles[i] = k.At(Time(off), func() { fired[i] = true })
		}
		cancelled := make(map[int]bool)
		for i := range handles {
			if i < len(mask) && mask[i] {
				handles[i].Cancel()
				cancelled[i] = true
			}
		}
		k.Run()
		for i := range offsets {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0s"},
		{5 * Nanosecond, "5ns"},
		{12 * Microsecond, "12µs"},
		{3 * Millisecond, "3ms"},
		{1.5, "1.5s"},
		{300, "5min"},
		{2 * Hour, "2h"},
		{3 * Day, "3d"},
		{Forever, "forever"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%g).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

// Handles must not leak across payload reuse: after an event fires and
// its pooled payload is recycled into a new event, the stale handle must
// report not-pending and refuse to cancel the new event.
func TestKernelStaleHandleAfterReuse(t *testing.T) {
	k := New(1)
	h1 := k.At(1, func() {})
	k.Run()
	if h1.Pending() {
		t.Fatal("handle pending after event fired")
	}
	if h1.Cancel() {
		t.Fatal("cancel of fired event reported true")
	}
	// The pool now holds h1's payload; this schedule reuses it.
	fired := false
	h2 := k.At(2, func() { fired = true })
	if h1.Cancel() {
		t.Fatal("stale handle cancelled a reused payload")
	}
	if h1.Pending() {
		t.Fatal("stale handle reports pending for reused payload")
	}
	k.Run()
	if !fired {
		t.Fatal("event cancelled through a stale handle")
	}
	if h2.Pending() {
		t.Fatal("fired handle still pending")
	}
}

// Cancelling the majority of a large heap triggers compaction; the
// remaining events must still fire in order and the heap must shrink.
func TestKernelCompaction(t *testing.T) {
	k := New(1)
	const n = 1000
	handles := make([]Handle, n)
	for i := 0; i < n; i++ {
		i := i
		handles[i] = k.At(Time(i+1), func() {})
	}
	for i := 0; i < n; i++ {
		if i%10 != 0 {
			handles[i].Cancel()
		}
	}
	if got := k.Pending(); got > n/10+compactMin {
		t.Fatalf("heap not compacted: %d entries pending for %d live", got, n/10)
	}
	var fired []Time
	prev := Time(-1)
	k.At(0, func() {}) // anchor so Run starts at 0
	for k.Step() {
		if k.Now() < prev {
			t.Fatalf("time went backwards after compaction: %v < %v", k.Now(), prev)
		}
		prev = k.Now()
		fired = append(fired, k.Now())
	}
	if int(k.Fired()) != n/10+1 {
		t.Fatalf("fired %d events, want %d survivors", k.Fired(), n/10+1)
	}
	_ = fired
}

// Events scheduled at the current time (the After(0) fast path) must fire
// after heap events already due at that time, in FIFO order, and before
// anything later.
func TestKernelSameTimeFastPathOrdering(t *testing.T) {
	k := New(1)
	var got []string
	k.At(10, func() {
		got = append(got, "A")
		// Scheduled while now==10: fast path. Must run after B (heap
		// entry at 10 with smaller seq) but before D (t=11).
		k.At(10, func() { got = append(got, "C1") })
		k.After(0, func() { got = append(got, "C2") })
	})
	k.At(10, func() { got = append(got, "B") })
	k.At(11, func() { got = append(got, "D") })
	k.Run()
	want := "A B C1 C2 D"
	if s := strings.Join(got, " "); s != want {
		t.Fatalf("order = %q, want %q", s, want)
	}
}

// Cancelling a fast-path (same-time) event must prevent it firing.
func TestKernelCancelFastPathEvent(t *testing.T) {
	k := New(1)
	fired := false
	k.At(5, func() {
		h := k.After(0, func() { fired = true })
		if !h.Cancel() {
			t.Error("cancel of fast-path event reported false")
		}
	})
	k.Run()
	if fired {
		t.Fatal("cancelled fast-path event fired")
	}
	if k.Fired() != 1 {
		t.Fatalf("Fired = %d, want 1", k.Fired())
	}
}

// RunUntil must honour fast-path events queued at the boundary time.
func TestKernelRunUntilWithFastPath(t *testing.T) {
	k := New(1)
	var got []Time
	k.At(2, func() {
		k.After(0, func() { got = append(got, k.Now()) })
	})
	k.At(3, func() { got = append(got, k.Now()) })
	k.RunUntil(2)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("RunUntil(2) fired %v, want the nested same-time event", got)
	}
	k.Run()
	if len(got) != 2 || got[1] != 3 {
		t.Fatalf("remaining events lost: %v", got)
	}
}

// The event pool must not grow with total events, only with peak
// concurrency: a long chain of one-pending-event steps allocates O(1).
func TestKernelPoolReuse(t *testing.T) {
	k := New(1)
	n := 0
	var fn func()
	fn = func() {
		n++
		if n < 10000 {
			k.After(1, fn)
		}
	}
	k.After(1, fn)
	k.Run()
	if len(k.free) > 4 {
		t.Fatalf("free list has %d payloads for a 1-deep chain", len(k.free))
	}
}

func BenchmarkKernelEventThroughput(b *testing.B) {
	k := New(1)
	rng := rand.New(rand.NewSource(7))
	var fn func()
	n := 0
	fn = func() {
		if n < b.N {
			n++
			k.After(Time(rng.Float64()), fn)
		}
	}
	b.ReportAllocs()
	k.After(0, fn)
	k.Run()
}

// BenchmarkKernelSameTimeEvents exercises the After(0) fast path that
// dominates proc handoff (Resume/Interrupt/Go).
func BenchmarkKernelSameTimeEvents(b *testing.B) {
	k := New(1)
	n := 0
	var fn func()
	fn = func() {
		if n < b.N {
			n++
			k.After(0, fn)
		}
	}
	b.ReportAllocs()
	k.After(0, fn)
	k.Run()
}

// BenchmarkKernelCancelHeavy models timeout-style workloads where most
// scheduled events are cancelled before firing, exercising lazy deletion
// and compaction.
func BenchmarkKernelCancelHeavy(b *testing.B) {
	k := New(1)
	rng := rand.New(rand.NewSource(7))
	n := 0
	var fn func()
	fn = func() {
		if n < b.N {
			n++
			h := k.After(Time(1+rng.Float64()), func() {}) // timeout, usually cancelled
			k.After(Time(rng.Float64()), fn)
			h.Cancel()
		}
	}
	b.ReportAllocs()
	k.After(0, fn)
	k.Run()
}
