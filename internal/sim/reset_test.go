package sim

import "testing"

// A reset kernel must replay the construction seed exactly: the same
// schedule produces the same event times, the same random draws, and
// the same final clock as both the first run and a freshly built
// kernel.
func TestKernelResetReplaysIdentically(t *testing.T) {
	drive := func(k *Kernel) (Time, []float64) {
		var draws []float64
		n := 0
		var fn func()
		fn = func() {
			draws = append(draws, k.Rand().Float64())
			if n < 50 {
				n++
				k.After(Time(k.Rand().Float64()), fn)
			}
		}
		k.After(0, fn)
		return k.Run(), draws
	}

	k := New(99)
	end1, draws1 := drive(k)
	if k.Pending() != 0 {
		t.Fatalf("pending %d after drained run", k.Pending())
	}
	k.Reset()
	if k.Now() != 0 || k.Fired() != 0 || k.Pending() != 0 {
		t.Fatalf("reset kernel not pristine: now=%v fired=%d pending=%d",
			k.Now(), k.Fired(), k.Pending())
	}
	end2, draws2 := drive(k)
	end3, draws3 := drive(New(99))

	if end1 != end2 || end1 != end3 {
		t.Fatalf("final times diverge: first %v, reset %v, fresh %v", end1, end2, end3)
	}
	for i := range draws1 {
		if draws1[i] != draws2[i] || draws1[i] != draws3[i] {
			t.Fatalf("draw %d diverges: first %v, reset %v, fresh %v",
				i, draws1[i], draws2[i], draws3[i])
		}
	}
}

// Cancelled events are lazily deleted; Reset must drain them rather
// than mistake them for pending work.
func TestKernelResetDrainsCancelled(t *testing.T) {
	k := New(3)
	h1 := k.After(1, func() {})
	h2 := k.After(2, func() {})
	h1.Cancel()
	h2.Cancel()
	k.Reset()
	if k.Pending() != 0 || k.Now() != 0 {
		t.Fatalf("reset after cancels: pending=%d now=%v", k.Pending(), k.Now())
	}
}

// Reset is for reusing a drained kernel, not aborting a run: live
// pending events must panic.
func TestKernelResetPanicsOnPending(t *testing.T) {
	k := New(3)
	k.After(1, func() {})
	defer func() {
		if recover() == nil {
			t.Fatalf("Reset with a pending event did not panic")
		}
	}()
	k.Reset()
}
