package sim

// Resource models a counted resource (CPU slots, link channels, license
// tokens) with FCFS admission. Requests are granted in arrival order;
// a request for n units blocks all later requests until it can be
// satisfied (no overtaking), which models a non-work-conserving FIFO
// server and keeps admission order deterministic.
type Resource struct {
	k        *Kernel
	capacity int
	inUse    int
	waiters  []*request
}

type request struct {
	n  int
	fn func(release func())
}

// NewResource returns a Resource with the given capacity on kernel k.
func NewResource(k *Kernel, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{k: k, capacity: capacity}
}

// Capacity returns the total capacity.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Queued returns the number of requests waiting for units.
func (r *Resource) Queued() int { return len(r.waiters) }

// Acquire requests n units. When granted (possibly immediately, as an
// event at the current time), fn runs with a release function that must
// be called exactly once to return the units. Requesting more than the
// capacity panics, since the request could never be granted.
func (r *Resource) Acquire(n int, fn func(release func())) {
	if n <= 0 || n > r.capacity {
		panic("sim: invalid resource request")
	}
	r.waiters = append(r.waiters, &request{n: n, fn: fn})
	r.dispatch()
}

// AcquireProc blocks proc p until n units are granted, returning the
// release function.
func (r *Resource) AcquireProc(p *Proc, n int) (release func()) {
	r.Acquire(n, func(rel func()) { p.Resume(rel) })
	payload, _ := p.Suspend()
	return payload.(func())
}

func (r *Resource) dispatch() {
	for len(r.waiters) > 0 {
		head := r.waiters[0]
		if r.inUse+head.n > r.capacity {
			return
		}
		r.waiters = r.waiters[1:]
		r.inUse += head.n
		n := head.n
		released := false
		release := func() {
			if released {
				panic("sim: double release")
			}
			released = true
			r.inUse -= n
			r.dispatch()
		}
		fn := head.fn
		// Grant as an event so the caller of Acquire never runs user
		// code synchronously inside dispatch (avoids reentrancy).
		r.k.After(0, func() { fn(release) })
	}
}

// Queue is an unbounded FIFO channel in virtual time: producers Put items
// and consumers receive them, with handoff scheduled as kernel events so
// ordering stays deterministic.
type Queue[T any] struct {
	k       *Kernel
	items   []T
	readers []func(T)
}

// NewQueue returns an empty queue on kernel k.
func NewQueue[T any](k *Kernel) *Queue[T] { return &Queue[T]{k: k} }

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Put appends v. If a consumer is waiting, delivery is scheduled now.
func (q *Queue[T]) Put(v T) {
	q.items = append(q.items, v)
	q.match()
}

// Get registers fn to receive the next item (possibly immediately, as an
// event at the current time). Multiple pending Gets are served FIFO.
func (q *Queue[T]) Get(fn func(T)) {
	q.readers = append(q.readers, fn)
	q.match()
}

// GetProc blocks proc p until an item is available and returns it.
func (q *Queue[T]) GetProc(p *Proc) T {
	q.Get(func(v T) { p.Resume(v) })
	payload, _ := p.Suspend()
	return payload.(T)
}

func (q *Queue[T]) match() {
	for len(q.items) > 0 && len(q.readers) > 0 {
		v := q.items[0]
		q.items = q.items[1:]
		fn := q.readers[0]
		q.readers = q.readers[1:]
		q.k.After(0, func() { fn(v) })
	}
}
