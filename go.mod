module northstar

go 1.22
