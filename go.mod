module northstar

go 1.23
