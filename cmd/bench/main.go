// Command bench measures the repository's two perf-critical paths — the
// event kernel and the experiment suite — and writes the results as JSON
// (BENCH_runner.json at the repo root; regenerate with scripts/bench.sh).
// The JSON seeds the repo's perf trajectory: each perf PR reruns it and
// the numbers must not regress.
//
// Usage:
//
//	bench                      # full-scale suite, 2M kernel events
//	bench -quick               # CI-scale suite
//	bench -events 500000       # shorter kernel run
//	bench -par 4               # parallel suite worker count (0 = CPUs)
//	bench -o out.json          # write somewhere else ("-" for stdout)
//
// Wall-clock numbers are host-dependent; the committed file records the
// reference container. The seed block is the pre-optimization baseline
// (PR 1: container/heap kernel, sequential-only runner) measured on that
// same container, kept for before/after comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"time"

	"northstar/internal/experiments"
	"northstar/internal/obs"
	"northstar/internal/sim"
)

// Report is the schema of BENCH_runner.json. Kernel is the unobserved
// (nil-probe) hot path; KernelProbed repeats the measurement with an
// obs.KernelProbe attached, pinning the enabled-observability overhead
// and proving the disabled path stays allocation-free.
type Report struct {
	Schema       string    `json:"schema"`
	Generated    string    `json:"generated_by"`
	Host         HostInfo  `json:"host"`
	Kernel       KernelRes `json:"kernel"`
	KernelProbed KernelRes `json:"kernel_probed"`
	Suite        SuiteRes  `json:"suite"`
	Seed         *SeedRef  `json:"seed_baseline,omitempty"`
}

// HostInfo identifies the measuring host; wall-clock numbers are only
// comparable within one host.
type HostInfo struct {
	Go         string `json:"go"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// KernelRes reports event-kernel throughput (the hot path of every
// simulation in the repo).
type KernelRes struct {
	Events         int     `json:"events"`
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
}

// SuiteRes reports experiment-suite wall clock, sequential vs parallel.
type SuiteRes struct {
	Quick             bool    `json:"quick"`
	Experiments       int     `json:"experiments"`
	SequentialSeconds float64 `json:"sequential_seconds"`
	ParallelWorkers   int     `json:"parallel_workers"`
	ParallelSeconds   float64 `json:"parallel_seconds"`
	Speedup           float64 `json:"speedup"`
}

// SeedRef is the fixed pre-optimization baseline for before/after
// comparison, measured on the reference container at PR 1.
type SeedRef struct {
	Note           string  `json:"note"`
	NsPerEvent     float64 `json:"kernel_ns_per_event"`
	AllocsPerEvent float64 `json:"kernel_allocs_per_event"`
	BytesPerEvent  float64 `json:"kernel_bytes_per_event"`
	SuiteSeconds   float64 `json:"suite_full_sequential_seconds"`
}

var seedBaseline = SeedRef{
	Note: "seed kernel (container/heap, pointer events, no pooling) + " +
		"sequential-only runner, reference container (1 CPU)",
	NsPerEvent:     79.5,
	AllocsPerEvent: 1,
	BytesPerEvent:  24,
	SuiteSeconds:   7.63,
}

func main() {
	events := flag.Int("events", 2_000_000, "kernel benchmark event count")
	quick := flag.Bool("quick", false, "run the suite at CI scale")
	par := flag.Int("par", 0, "parallel suite workers; 0 = one per CPU")
	out := flag.String("o", "BENCH_runner.json", `output path ("-" for stdout)`)
	flag.Parse()

	rep := Report{
		Schema:    "northstar-bench/v2",
		Generated: "go run ./cmd/bench (see scripts/bench.sh)",
		Host: HostInfo{
			Go:         runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			CPUs:       runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		Seed: &seedBaseline,
	}

	fmt.Fprintf(os.Stderr, "bench: kernel throughput (%d events, nil probe)...\n", *events)
	rep.Kernel = benchKernel(*events, nil)
	fmt.Fprintf(os.Stderr, "bench: kernel throughput (%d events, counting probe)...\n", *events)
	probe := obs.NewKernelProbe()
	rep.KernelProbed = benchKernel(*events, probe)
	if got := int(probe.Fired()); got != *events+1 {
		fatal(fmt.Errorf("probe counted %d fired events, want %d", got, *events+1))
	}

	workers := *par
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rep.Suite.Quick = *quick
	rep.Suite.Experiments = len(experiments.All())
	rep.Suite.ParallelWorkers = workers

	fmt.Fprintf(os.Stderr, "bench: suite sequential (quick=%v)...\n", *quick)
	rep.Suite.SequentialSeconds = benchSuite(*quick, 1)
	fmt.Fprintf(os.Stderr, "bench: suite parallel (workers=%d)...\n", workers)
	rep.Suite.ParallelSeconds = benchSuite(*quick, workers)
	if rep.Suite.ParallelSeconds > 0 {
		rep.Suite.Speedup = round3(rep.Suite.SequentialSeconds / rep.Suite.ParallelSeconds)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s (kernel %.1f ns/event nil probe, %.1f probed, %.2f allocs/event; suite %.2fs -> %.2fs, %.2fx)\n",
		*out, rep.Kernel.NsPerEvent, rep.KernelProbed.NsPerEvent, rep.Kernel.AllocsPerEvent,
		rep.Suite.SequentialSeconds, rep.Suite.ParallelSeconds, rep.Suite.Speedup)
}

// benchKernel mirrors BenchmarkKernelEventThroughput (internal/sim): a
// self-rescheduling event chain with random future offsets, measured with
// memstats deltas so it needs no testing harness. A non-nil probe is
// attached before the run (the kernel_probed measurement).
func benchKernel(events int, probe *obs.KernelProbe) KernelRes {
	k := sim.New(1)
	if probe != nil {
		k.SetProbe(probe)
	}
	rng := rand.New(rand.NewSource(7))
	n := 0
	var fn func()
	fn = func() {
		if n < events {
			n++
			k.After(sim.Time(rng.Float64()), fn)
		}
	}
	k.After(0, fn)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	k.Run()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	return KernelRes{
		Events:         events,
		NsPerEvent:     round3(float64(elapsed.Nanoseconds()) / float64(events)),
		AllocsPerEvent: round3(float64(after.Mallocs-before.Mallocs) / float64(events)),
		BytesPerEvent:  round3(float64(after.TotalAlloc-before.TotalAlloc) / float64(events)),
	}
}

// benchSuite runs the whole experiment suite once and reports seconds.
func benchSuite(quick bool, workers int) float64 {
	start := time.Now()
	if _, err := experiments.RunAllParallel(io.Discard, quick, workers); err != nil {
		fatal(err)
	}
	return round3(time.Since(start).Seconds())
}

func round3(v float64) float64 { return float64(int64(v*1000+0.5)) / 1000 }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
