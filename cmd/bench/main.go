// Command bench measures the repository's perf-critical paths — the
// event kernel, the experiment suite, and the sharded Monte Carlo engine
// — and writes the results as JSON (BENCH_runner.json at the repo root;
// regenerate with scripts/bench.sh). The JSON seeds the repo's perf
// trajectory: each perf PR reruns it and the numbers must not regress.
//
// Usage:
//
//	bench                      # full-scale suite, 2M kernel events
//	bench -quick               # CI-scale suite
//	bench -events 500000       # shorter kernel run
//	bench -par 4               # parallel suite worker count (0 = CPUs)
//	bench -o out.json          # write somewhere else ("-" for stdout)
//
// Wall-clock numbers are host-dependent; the committed file records the
// reference container. The seed block is the pre-optimization baseline
// (PR 1: container/heap kernel, sequential-only runner) measured on that
// same container, kept for before/after comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"northstar/internal/experiments"
	"northstar/internal/fault"
	"northstar/internal/machine"
	"northstar/internal/mc"
	"northstar/internal/network"
	"northstar/internal/node"
	"northstar/internal/obs"
	"northstar/internal/sim"
	"northstar/internal/stats"
	"northstar/internal/tech"
	"northstar/internal/topology"
)

// benchSchema is the report schema version. v7 added the queue section
// (event-queue backend comparison: heap vs calendar ns/event and
// allocs/event under uniform, same-time-heavy, and bimodal scheduling
// distributions at 1e4 and 1e6 pending) and rebased the long-pole
// baseline to the committed v6 numbers. v6 added the serve section
// (scenario-service load: cached vs uncached qps and latency
// percentiles, `bench -serve`).
const benchSchema = "northstar-bench/v7"

// Report is the schema of BENCH_runner.json (northstar-bench/v7; the
// schema is documented in EXPERIMENTS.md). Kernel is the unobserved
// (nil-probe) hot path; KernelProbed repeats the measurement with an
// obs.KernelProbe attached, pinning the enabled-observability overhead
// and proving the disabled path stays allocation-free. Fabric and
// FabricProbed make the same nil-vs-attached claim for the model-level
// domain probe on a packet-fabric send chain (`bench -probeguard`
// holds the gap under 10%). Memory records bytes/node for machine+topology
// builds at growing scale — the budget ROADMAP item 2 tracks. Queue
// races the kernel's two event-queue backends (heap vs calendar) under
// the scheduling distributions that separate them. Shards measures the
// Monte Carlo shard engine on the suite's slowest replication loop.
// LongPoles records the long-pole attack (committed v6 baseline vs this
// run) — see LongPoleDelta.
type Report struct {
	Schema       string        `json:"schema"`
	Generated    string        `json:"generated_by"`
	Host         HostInfo      `json:"host"`
	Kernel       KernelRes     `json:"kernel"`
	KernelProbed KernelRes     `json:"kernel_probed"`
	Fabric       KernelRes     `json:"fabric"`
	FabricProbed KernelRes     `json:"fabric_probed"`
	Memory       MemoryRes     `json:"memory"`
	Queue        QueueRes      `json:"queue"`
	Suite        SuiteRes      `json:"suite"`
	Shards       ShardRes      `json:"shard_scaling"`
	Serve        ServeRes      `json:"serve"`
	LongPoles    LongPoleDelta `json:"long_pole_delta"`
	Seed         *SeedRef      `json:"seed_baseline,omitempty"`
}

// QueueRes races the kernel's event-queue backends head to head: the
// same steady-state churn (every fired event reschedules itself, so
// depth stays constant) runs once on the 4-ary heap and once on the
// calendar queue, per scheduling distribution and pending depth. The
// distributions are the ones that separate the backends: uniform offsets
// (the generic case), same-time-heavy (64 discrete slots, the
// synchronized-collective shape where sorted-run appends shine), and
// bimodal near/far (a dense working set plus far timers, the shape that
// exercises the calendar's overflow heap and window slide). Depths 1e4
// and 1e6 bracket the suite's kernels and the 10^5-10^6-node goal.
type QueueRes struct {
	Points []QueuePoint `json:"points"`
}

// QueuePoint is one distribution x depth comparison. Events counts fired
// events in the measured phase (after a warm-up that lets the calendar's
// arena and window ratchet to the workload); speedup is heap/calendar.
type QueuePoint struct {
	Distribution       string  `json:"distribution"`
	Pending            int     `json:"pending"`
	Events             int     `json:"events"`
	HeapNsPerEvent     float64 `json:"heap_ns_per_event"`
	CalNsPerEvent      float64 `json:"calendar_ns_per_event"`
	HeapAllocsPerEvent float64 `json:"heap_allocs_per_event"`
	CalAllocsPerEvent  float64 `json:"calendar_allocs_per_event"`
	Speedup            float64 `json:"calendar_speedup"`
}

// MemoryRes reports heap cost per simulated node for machine builds at
// growing scale (the memory ceiling is the enemy of the 10^5-10^6 node
// goal; this is its budget line).
type MemoryRes struct {
	Model  string        `json:"model"`
	Points []MemoryPoint `json:"points"`
}

// MemoryPoint is one machine-build measurement: settled heap growth
// (GC forced before each read) attributable to the build.
type MemoryPoint struct {
	Nodes        int     `json:"nodes"`
	HeapBytes    uint64  `json:"heap_bytes"`
	BytesPerNode float64 `json:"bytes_per_node"`
}

// HostInfo identifies the measuring host; wall-clock numbers are only
// comparable within one host.
type HostInfo struct {
	Go         string `json:"go"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// KernelRes reports event-kernel throughput (the hot path of every
// simulation in the repo).
type KernelRes struct {
	Events         int     `json:"events"`
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
}

// SuiteRes reports experiment-suite wall clock, sequential vs parallel.
// SpecSeconds is the per-spec breakdown from an observed sequential run
// (the numbers behind the Spec.Cost scheduling hints), and LongPoles
// names its top five — the specs future perf PRs should target.
// Efficiency normalizes Speedup by min(workers, NumCPU): on a 1-CPU
// host a ~1.0x speedup at efficiency ~1.0 means the pool is doing its
// job and the host, not the runner, is the bottleneck.
type SuiteRes struct {
	Quick              bool               `json:"quick"`
	Experiments        int                `json:"experiments"`
	SequentialSeconds  float64            `json:"sequential_seconds"`
	ParallelWorkers    int                `json:"parallel_workers"`
	ParallelSeconds    float64            `json:"parallel_seconds"`
	Speedup            float64            `json:"speedup"`
	ParallelEfficiency float64            `json:"parallel_efficiency"`
	SpecSeconds        map[string]float64 `json:"spec_seconds"`
	LongPoles          []LongPole         `json:"long_poles"`
}

// LongPole names one of the slowest specs in the observed breakdown.
type LongPole struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
}

// LongPoleDelta records the long-pole optimization campaign: for each
// targeted spec, the sequential seconds measured at the committed v6
// baseline (post order-statistics/shared-oracle, pre calendar-queue,
// reference container) against this run's spec_seconds, plus the
// suite-wide before/after and the sequential-time budget the CI guard
// enforces (`bench -guard`).
type LongPoleDelta struct {
	Baseline           string      `json:"baseline"`
	SuiteBudgetSeconds float64     `json:"suite_budget_seconds"`
	SuiteBefore        float64     `json:"suite_sequential_before_seconds"`
	SuiteAfter         float64     `json:"suite_sequential_after_seconds"`
	Poles              []PoleDelta `json:"poles"`
}

// PoleDelta is one targeted spec's before/after measurement.
type PoleDelta struct {
	ID      string  `json:"id"`
	Before  float64 `json:"before_seconds"`
	After   float64 `json:"after_seconds"`
	Speedup float64 `json:"speedup"`
}

// poleBaseline is the committed northstar-bench/v6 spec_seconds for the
// five tail poles of the calendar-queue campaign, measured on the
// reference container after the order-statistics/shared-oracle/
// machine-reuse work but before the calendar-queue kernel backend,
// coroutine proc delivery, and per-shard probe hoisting.
// suiteBaselineSeconds is that report's full sequential suite time;
// suiteBudgetSeconds is the post-campaign budget the guard holds the
// suite to.
var poleBaseline = []PoleDelta{
	{ID: "E10", Before: 0.603},
	{ID: "E6", Before: 0.465},
	{ID: "E4", Before: 0.440},
	{ID: "X6", Before: 0.252},
	{ID: "E8", Before: 0.195},
}

const (
	suiteBaselineSeconds = 2.102
	suiteBudgetSeconds   = 2.0
)

// ShardRes reports the Monte Carlo shard engine's scaling on the E9
// first-failure loop (the suite's slowest replication body): ns per
// replication at shards 1/2/4/8 on a pool sized to match, the
// pre-sharding single-stream loop as baseline, the shards=1 overhead
// against it, and a bit-identity self-check across shard counts.
type ShardRes struct {
	Model                string       `json:"model"`
	Runs                 int          `json:"runs"`
	SingleStreamNsPerRep float64      `json:"single_stream_baseline_ns_per_rep"`
	Shards1OverheadPct   float64      `json:"shards1_overhead_pct_vs_single_stream"`
	BitIdentical         bool         `json:"bit_identical_shards_1_2_8"`
	Points               []ShardPoint `json:"points"`
}

// ShardPoint is one shard-count measurement.
type ShardPoint struct {
	Shards   int     `json:"shards"`
	NsPerRep float64 `json:"ns_per_rep"`
	Speedup  float64 `json:"speedup_vs_shards1"`
}

// SeedRef is the fixed pre-optimization baseline for before/after
// comparison, measured on the reference container at PR 1.
type SeedRef struct {
	Note           string  `json:"note"`
	NsPerEvent     float64 `json:"kernel_ns_per_event"`
	AllocsPerEvent float64 `json:"kernel_allocs_per_event"`
	BytesPerEvent  float64 `json:"kernel_bytes_per_event"`
	SuiteSeconds   float64 `json:"suite_full_sequential_seconds"`
}

var seedBaseline = SeedRef{
	Note: "seed kernel (container/heap, pointer events, no pooling) + " +
		"sequential-only runner, reference container (1 CPU)",
	NsPerEvent:     79.5,
	AllocsPerEvent: 1,
	BytesPerEvent:  24,
	SuiteSeconds:   7.63,
}

func main() {
	events := flag.Int("events", 2_000_000, "kernel benchmark event count")
	quick := flag.Bool("quick", false, "run the suite at CI scale")
	par := flag.Int("par", 0, "parallel suite workers; 0 = one per CPU")
	out := flag.String("o", "BENCH_runner.json", `output path ("-" for stdout)`)
	guard := flag.Bool("guard", false,
		"regression-guard mode: measure spec_seconds only and fail if any long pole regresses >25% vs the committed baseline or the suite exceeds its budget")
	probeGuard := flag.Bool("probeguard", false,
		"probe-overhead guard mode: measure the fabric send chain nil-probe vs domain-probe and fail if the attached probe costs >10% per send")
	serveBench := flag.Bool("serve", false,
		"serve-benchmark mode: load-test the scenario service (cached and uncached traffic) and merge the serve section into the committed report")
	baseline := flag.String("baseline", "BENCH_runner.json", "committed report the guard compares against")
	flag.Parse()

	if *guard {
		os.Exit(runGuard(*baseline))
	}
	if *probeGuard {
		os.Exit(runProbeGuard())
	}
	if *serveBench {
		os.Exit(runServeBench(*baseline))
	}

	rep := Report{
		Schema:    benchSchema,
		Generated: "go run ./cmd/bench (see scripts/bench.sh)",
		Host: HostInfo{
			Go:         runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			CPUs:       runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		Seed: &seedBaseline,
	}

	fmt.Fprintf(os.Stderr, "bench: kernel throughput (%d events, nil probe)...\n", *events)
	rep.Kernel = benchKernel(*events, nil)
	fmt.Fprintf(os.Stderr, "bench: kernel throughput (%d events, counting probe)...\n", *events)
	probe := obs.NewKernelProbe()
	rep.KernelProbed = benchKernel(*events, probe)
	if got := int(probe.Fired()); got != *events+1 {
		fatal(fmt.Errorf("probe counted %d fired events, want %d", got, *events+1))
	}

	fsends := *events / 4
	fmt.Fprintf(os.Stderr, "bench: fabric send chain (%d sends, nil probe)...\n", fsends)
	rep.Fabric = benchFabric(fsends, nil)
	fmt.Fprintf(os.Stderr, "bench: fabric send chain (%d sends, domain probe)...\n", fsends)
	dp := obs.NewDomainProbe()
	rep.FabricProbed = benchFabric(fsends, dp)
	if got := dp.Messages(network.KindPacket); got != uint64(fsends) {
		fatal(fmt.Errorf("domain probe counted %d messages, want %d", got, fsends))
	}

	fmt.Fprintf(os.Stderr, "bench: machine memory footprint (bytes/node)...\n")
	rep.Memory = benchMemory()

	fmt.Fprintf(os.Stderr, "bench: event-queue backends (heap vs calendar)...\n")
	rep.Queue = benchQueue()
	for _, pt := range rep.Queue.Points {
		fmt.Fprintf(os.Stderr, "bench:   %-16s pending=%-8d heap %6.1f ns/ev  calendar %6.1f ns/ev (%.2fx, %.2f allocs/ev)\n",
			pt.Distribution, pt.Pending, pt.HeapNsPerEvent, pt.CalNsPerEvent, pt.Speedup, pt.CalAllocsPerEvent)
	}

	workers := *par
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rep.Suite.Quick = *quick
	rep.Suite.Experiments = len(experiments.All())
	rep.Suite.ParallelWorkers = workers

	fmt.Fprintf(os.Stderr, "bench: suite sequential (quick=%v)...\n", *quick)
	rep.Suite.SequentialSeconds = benchSuite(*quick, 1, nil)
	fmt.Fprintf(os.Stderr, "bench: suite sequential, observed (per-spec breakdown)...\n")
	rep.Suite.SpecSeconds, rep.Suite.LongPoles = benchSpecBreakdown(*quick)
	fmt.Fprintf(os.Stderr, "bench: suite parallel (workers=%d)...\n", workers)
	rep.Suite.ParallelSeconds = benchSuite(*quick, workers, nil)
	if rep.Suite.ParallelSeconds > 0 {
		rep.Suite.Speedup = round3(rep.Suite.SequentialSeconds / rep.Suite.ParallelSeconds)
		// Speedup is bounded by the narrower of the pool and the host;
		// normalizing by that bound separates "the runner failed to
		// parallelize" from "the host has nothing to parallelize onto".
		bound := workers
		if cpus := runtime.NumCPU(); cpus < bound {
			bound = cpus
		}
		rep.Suite.ParallelEfficiency = round3(rep.Suite.Speedup / float64(bound))
	}

	fmt.Fprintf(os.Stderr, "bench: shard scaling (Monte Carlo engine)...\n")
	rep.Shards = benchShards()

	fmt.Fprintf(os.Stderr, "bench: scenario service load (cached + uncached)...\n")
	rep.Serve = benchServe()

	rep.LongPoles = poleDelta(rep.Suite.SequentialSeconds, rep.Suite.SpecSeconds)
	printDelta(os.Stderr, rep.LongPoles)

	if *out == "-" {
		enc, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(append(enc, '\n'))
		return
	}
	if err := writeReport(*out, rep); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s (kernel %.1f ns/event nil probe, %.1f probed, %.2f allocs/event; fabric %.1f -> %.1f ns/send probed; suite %.2fs -> %.2fs, %.2fx, eff %.2f; shards=1 overhead %+.1f%%)\n",
		*out, rep.Kernel.NsPerEvent, rep.KernelProbed.NsPerEvent, rep.Kernel.AllocsPerEvent,
		rep.Fabric.NsPerEvent, rep.FabricProbed.NsPerEvent,
		rep.Suite.SequentialSeconds, rep.Suite.ParallelSeconds, rep.Suite.Speedup,
		rep.Suite.ParallelEfficiency, rep.Shards.Shards1OverheadPct)
}

// benchKernel mirrors BenchmarkKernelEventThroughput (internal/sim): a
// self-rescheduling event chain with random future offsets, measured with
// memstats deltas so it needs no testing harness. A non-nil probe is
// attached before the run (the kernel_probed measurement).
func benchKernel(events int, probe *obs.KernelProbe) KernelRes {
	k := sim.New(1)
	if probe != nil {
		k.SetProbe(probe)
	}
	rng := rand.New(rand.NewSource(7))
	n := 0
	var fn func()
	fn = func() {
		if n < events {
			n++
			k.After(sim.Time(rng.Float64()), fn)
		}
	}
	k.After(0, fn)

	var before, after runtime.MemStats
	readMem(&before)
	start := time.Now()
	k.Run()
	elapsed := time.Since(start)
	readMem(&after)

	return KernelRes{
		Events:         events,
		NsPerEvent:     round3(float64(elapsed.Nanoseconds()) / float64(events)),
		AllocsPerEvent: round3(float64(after.Mallocs-before.Mallocs) / float64(events)),
		BytesPerEvent:  round3(float64(after.TotalAlloc-before.TotalAlloc) / float64(events)),
	}
}

// readMem forces a collection before reading, so heap numbers are
// settled state rather than whatever garbage happened to be pending —
// without it the alloc deltas swing with GC timing.
func readMem(m *runtime.MemStats) {
	runtime.GC()
	runtime.ReadMemStats(m)
}

// benchFabric drives a packet-level fabric with a self-rechaining send
// loop (each delivery triggers the next send to a random peer), the
// fabric analog of benchKernel: a 64-node Myrinet torus carrying 2-5
// packet messages over multi-hop routes — the per-message work the
// domain probe's hooks amortize against. A non-nil probe is attached
// before the run (the fabric_probed measurement / the -probeguard
// comparison); nil exercises the unobserved hot path. Events counts
// sends; ns_per_event is host nanoseconds per send.
func benchFabric(sends int, probe network.Probe) KernelRes {
	const side = 8 // 8x8 torus, 64 endpoints
	k := sim.New(1)
	f := network.NewPacketNet(k, network.Myrinet2000(), topology.Torus2D(side, side))
	f.SetProbe(probe)
	const endpoints = side * side
	mtu := int64(network.Myrinet2000().MTU)
	rng := rand.New(rand.NewSource(7))
	n := 0
	var send func()
	send = func() {
		if n >= sends {
			return
		}
		n++
		src := rng.Intn(endpoints)
		dst := rng.Intn(endpoints - 1)
		if dst >= src {
			dst++
		}
		f.Send(src, dst, mtu*2+int64(rng.Int63n(mtu*3)), nil, send)
	}
	k.After(0, send)

	var before, after runtime.MemStats
	readMem(&before)
	start := time.Now()
	k.Run()
	elapsed := time.Since(start)
	readMem(&after)

	return KernelRes{
		Events:         sends,
		NsPerEvent:     round3(float64(elapsed.Nanoseconds()) / float64(sends)),
		AllocsPerEvent: round3(float64(after.Mallocs-before.Mallocs) / float64(sends)),
		BytesPerEvent:  round3(float64(after.TotalAlloc-before.TotalAlloc) / float64(sends)),
	}
}

// benchQueue measures the queue section: for each scheduling
// distribution and pending depth, the same churn workload (fixed depth,
// every fire reschedules) runs on a heap-pinned and a calendar-pinned
// kernel. Offsets draw from a horizon of 1 virtual microsecond per
// pending event, so depth scales density the way a growing machine does
// rather than just packing the same interval tighter.
func benchQueue() QueueRes {
	type dist struct {
		name string
		draw func(rng *rand.Rand, horizon sim.Time) sim.Time
	}
	dists := []dist{
		{"uniform", func(rng *rand.Rand, h sim.Time) sim.Time {
			return sim.Time(rng.Float64()) * h
		}},
		{"same_time_heavy", func(rng *rand.Rand, h sim.Time) sim.Time {
			// 64 discrete slots: thousands of events share each exact
			// timestamp, the shape of synchronized collectives.
			return sim.Time(rng.Intn(64)+1) * (h / 64)
		}},
		{"bimodal", func(rng *rand.Rand, h sim.Time) sim.Time {
			// Dense near cluster plus a far tail (checkpoint/MTBF-style
			// timers): exercises the overflow heap and window slide.
			if rng.Float64() < 0.8 {
				return sim.Time(rng.Float64()) * (h / 10)
			}
			return h + sim.Time(rng.Float64())*h
		}},
	}
	var res QueueRes
	for _, d := range dists {
		for _, pending := range []int{10_000, 1_000_000} {
			horizon := sim.Time(pending) * sim.Microsecond
			churn := 4 * pending
			if churn < 1_000_000 {
				churn = 1_000_000
			}
			if churn > 2_000_000 {
				churn = 2_000_000
			}
			draw := func(rng *rand.Rand) sim.Time { return d.draw(rng, horizon) }
			hNs, hAllocs := measureQueue(sim.QueueHeap, pending, churn, draw)
			cNs, cAllocs := measureQueue(sim.QueueCalendar, pending, churn, draw)
			pt := QueuePoint{
				Distribution:       d.name,
				Pending:            pending,
				Events:             churn,
				HeapNsPerEvent:     hNs,
				CalNsPerEvent:      cNs,
				HeapAllocsPerEvent: hAllocs,
				CalAllocsPerEvent:  cAllocs,
			}
			if cNs > 0 {
				pt.Speedup = round3(hNs / cNs)
			}
			res.Points = append(res.Points, pt)
		}
	}
	return res
}

// measureQueue runs one backend through the churn workload: fill to the
// target depth, warm up with a quarter of the churn (capacity ratchets,
// window shaping), then measure ns and allocs per fired event over the
// full churn with memstats deltas, best of three passes (the minimum is
// the pass least perturbed by host scheduling noise, which on a shared
// container dwarfs the backend gap this section measures). Every fire
// reschedules before a possible Stop, so the depth is exactly `pending`
// throughout.
func measureQueue(kind sim.QueueKind, pending, churn int, draw func(*rand.Rand) sim.Time) (nsPerEvent, allocsPerEvent float64) {
	k := sim.NewOnQueue(1, kind)
	rng := rand.New(rand.NewSource(7))
	fired, target := 0, 0
	var fn func()
	fn = func() {
		fired++
		k.After(draw(rng), fn)
		if fired >= target {
			k.Stop()
		}
	}
	for i := 0; i < pending; i++ {
		k.After(draw(rng), fn)
	}
	target = churn / 4
	k.Run()

	bestNs, allocs := math.Inf(1), 0.0
	for rep := 0; rep < 3; rep++ {
		fired, target = 0, churn
		var before, after runtime.MemStats
		readMem(&before)
		start := time.Now()
		k.Run()
		elapsed := time.Since(start)
		readMem(&after)
		if ns := float64(elapsed.Nanoseconds()) / float64(churn); ns < bestNs {
			bestNs = ns
		}
		allocs = float64(after.Mallocs-before.Mallocs) / float64(churn)
	}
	return round3(bestNs), round3(allocs)
}

// benchMemory measures settled heap growth per simulated node for
// packet-level machine builds at 1e3/1e4/1e5 nodes — conventional 2002
// nodes on a Myrinet torus, the configuration the scale experiments
// use. GC runs before each read so the delta is live structure, not
// construction garbage.
func benchMemory() MemoryRes {
	model := node.MustBuild(node.Conventional, tech.Default2002(), 2002)
	res := MemoryRes{
		Model: "machine.New: conventional 2002 nodes, packet-level torus3d, myrinet2000",
	}
	for _, nodes := range []int{1_000, 10_000, 100_000} {
		var before, after runtime.MemStats
		readMem(&before)
		m, err := machine.New(machine.Config{
			Nodes:       nodes,
			Node:        model,
			Fabric:      network.Myrinet2000(),
			PacketLevel: true,
			Topology:    machine.TopoTorus3D,
			Seed:        1,
		})
		if err != nil {
			fatal(err)
		}
		readMem(&after)
		heap := after.HeapAlloc - before.HeapAlloc
		res.Points = append(res.Points, MemoryPoint{
			Nodes:        nodes,
			HeapBytes:    heap,
			BytesPerNode: round3(float64(heap) / float64(nodes)),
		})
		runtime.KeepAlive(m)
	}
	return res
}

// runProbeGuard is the CI probe-overhead guard: best-of-reps fabric
// send timing with a nil probe against an attached obs.DomainProbe,
// failing if the attached probe costs more than 10% per send — the
// same claim the kernel/kernel_probed sections pin for sim.Probe.
func runProbeGuard() int {
	const sends, reps = 400_000, 7
	best := func(mk func() network.Probe) float64 {
		b := math.Inf(1)
		for i := 0; i < reps; i++ {
			if ns := benchFabric(sends, mk()).NsPerEvent; ns < b {
				b = ns
			}
		}
		return b
	}
	nilNs := best(func() network.Probe { return nil })
	probedNs := best(func() network.Probe { return obs.NewDomainProbe() })
	pct := (probedNs - nilNs) / nilNs * 100
	fmt.Fprintf(os.Stderr, "bench: probeguard: fabric send %.1f ns nil probe, %.1f ns domain probe (%+.1f%%)\n",
		nilNs, probedNs, pct)
	if pct > 10 {
		fmt.Fprintf(os.Stderr, "bench: probeguard: attached domain probe exceeds the 10%% overhead budget\n")
		return 1
	}
	fmt.Fprintf(os.Stderr, "bench: probeguard: ok (within 10%%)\n")
	return 0
}

// benchSuite runs the whole experiment suite once and reports seconds.
// The intra-experiment Monte Carlo pool is budgeted against the suite
// workers (helpers = GOMAXPROCS - workers, floored at 0) so the two
// levels of parallelism share one CPU budget. A non-nil observer
// instruments the run.
func benchSuite(quick bool, workers int, observer *obs.SuiteObserver) float64 {
	mc.SetDefaultWorkers(runtime.GOMAXPROCS(0) - workers)
	defer mc.SetDefaultWorkers(runtime.GOMAXPROCS(0) - 1)
	start := time.Now()
	opts := experiments.Options{Quick: quick, Workers: workers, Observer: observer}
	if _, err := experiments.RunSuite(io.Discard, opts); err != nil {
		fatal(err)
	}
	return round3(time.Since(start).Seconds())
}

// benchSpecBreakdown runs the suite sequentially under the observer and
// extracts each spec's host wall clock from the metrics registry
// (host_seconds gauge per spec scope), plus the top-5 long poles.
func benchSpecBreakdown(quick bool) (map[string]float64, []LongPole) {
	observer := obs.NewSuiteObserver(nil, nil, nil)
	benchSuite(quick, 1, observer)
	specSeconds := make(map[string]float64, len(experiments.All()))
	for _, s := range experiments.All() {
		specSeconds[s.ID] = round3(observer.Registry().Scope(s.ID).Gauge("host_seconds"))
	}
	poles := make([]LongPole, 0, len(specSeconds))
	for id, secs := range specSeconds {
		poles = append(poles, LongPole{ID: id, Seconds: secs})
	}
	sort.Slice(poles, func(i, j int) bool {
		if poles[i].Seconds != poles[j].Seconds {
			return poles[i].Seconds > poles[j].Seconds
		}
		return poles[i].ID < poles[j].ID
	})
	if len(poles) > 5 {
		poles = poles[:5]
	}
	return specSeconds, poles
}

// benchShards measures the sharded Monte Carlo engine on the E9
// first-failure model (Weibull infant mortality, 1000 nodes — the
// suite's slowest replication loop) at shards 1/2/4/8, against the
// pre-sharding single-stream loop, and self-checks bit-identity across
// shard counts.
func benchShards() ShardRes {
	system := fault.System{
		Nodes:    1000,
		Lifetime: stats.Weibull{Shape: 0.7, Scale: float64(1000 * sim.Day)},
	}
	const runs, seed, reps = 2000, 7, 15

	res := ShardRes{
		Model: "fault.System.FirstFailureMean, 1000 nodes, weibull(0.7) lifetimes",
		Runs:  runs,
	}

	// Pre-sharding baseline: one rand stream, no pool, no reseeding —
	// the loop FirstFailureMean ran before the shard engine existed.
	singleStream := func() sim.Time {
		rng := rand.New(rand.NewSource(seed))
		var sum float64
		for r := 0; r < runs; r++ {
			first := math.Inf(1)
			for n := 0; n < system.Nodes; n++ {
				if t := system.Lifetime.Sample(rng); t < first {
					first = t
				}
			}
			sum += first
		}
		return sim.Time(sum / runs)
	}
	// Best-of-reps: the minimum is the run least perturbed by host
	// scheduling noise, which on a shared container dwarfs the few-percent
	// effects this section exists to measure.
	bestOf := func(f func()) float64 {
		best := math.Inf(1)
		for i := 0; i < reps; i++ {
			start := time.Now()
			f()
			if ns := float64(time.Since(start).Nanoseconds()); ns < best {
				best = ns
			}
		}
		return round3(best / runs)
	}
	res.SingleStreamNsPerRep = bestOf(func() { singleStream() })

	var base sim.Time
	for _, shards := range []int{1, 2, 4, 8} {
		p := mc.NewPool(shards - 1)
		v := system.FirstFailureMeanSharded(p, runs, seed, shards)
		ns := bestOf(func() { system.FirstFailureMeanSharded(p, runs, seed, shards) })
		pt := ShardPoint{Shards: shards, NsPerRep: ns}
		if shards == 1 {
			base = v
			res.Shards1OverheadPct = round3((ns - res.SingleStreamNsPerRep) / res.SingleStreamNsPerRep * 100)
			res.BitIdentical = true
			pt.Speedup = 1
		} else {
			if v != base {
				res.BitIdentical = false
			}
			if ns > 0 {
				pt.Speedup = round3(res.Points[0].NsPerRep / ns)
			}
		}
		res.Points = append(res.Points, pt)
		p.Close()
	}
	// A quick checkpoint-model cross-check on the same invariant.
	c := fault.Checkpoint{
		Work: 168 * sim.Hour, Interval: sim.Hour, Overhead: 5 * sim.Minute,
		Restart: 10 * sim.Minute, MTBF: 12 * sim.Hour,
	}
	p := mc.NewPool(7)
	defer p.Close()
	c1, err := c.SimulateSharded(p, 200, 42, 1)
	if err != nil {
		fatal(err)
	}
	for _, shards := range []int{2, 8} {
		cs, err := c.SimulateSharded(p, 200, 42, shards)
		if err != nil {
			fatal(err)
		}
		if cs != c1 {
			res.BitIdentical = false
		}
	}
	if !res.BitIdentical {
		fatal(fmt.Errorf("shard bit-identity self-check failed; results depend on shard count"))
	}
	return res
}

// poleDelta fills the long_pole_delta section from this run's observed
// sequential breakdown against the hardcoded v3 baseline.
func poleDelta(suiteSeconds float64, specSeconds map[string]float64) LongPoleDelta {
	d := LongPoleDelta{
		Baseline: "northstar-bench/v6 (pre calendar-queue / coroutine procs / " +
			"per-shard probe hoisting), reference container",
		SuiteBudgetSeconds: suiteBudgetSeconds,
		SuiteBefore:        suiteBaselineSeconds,
		SuiteAfter:         suiteSeconds,
	}
	for _, p := range poleBaseline {
		p.After = specSeconds[p.ID]
		if p.After > 0 {
			p.Speedup = round3(p.Before / p.After)
		}
		d.Poles = append(d.Poles, p)
	}
	return d
}

// printDelta renders the long-pole before/after table (the headline of
// the perf campaign; scripts/bench.sh shows it after every run).
func printDelta(w io.Writer, d LongPoleDelta) {
	fmt.Fprintf(w, "bench: long-pole delta vs v6 baseline\n")
	fmt.Fprintf(w, "  %-6s %10s %10s %9s\n", "spec", "before-s", "after-s", "speedup")
	for _, p := range d.Poles {
		fmt.Fprintf(w, "  %-6s %10.3f %10.3f %8.1fx\n", p.ID, p.Before, p.After, p.Speedup)
	}
	fmt.Fprintf(w, "  %-6s %10.3f %10.3f   (budget %.1f s)\n",
		"suite", d.SuiteBefore, d.SuiteAfter, d.SuiteBudgetSeconds)
}

// runGuard is the CI regression guard: it measures only the sequential
// spec breakdown (the cheap part of the full report), loads the
// committed report, and fails if any targeted long pole regressed by
// more than 25% against the committed spec_seconds or the suite's
// sequential wall clock exceeds the committed budget. Wall-clock numbers
// are host-dependent, so the 25% margin plus the absolute budget — not
// equality — is the contract.
func runGuard(baselinePath string) int {
	committed, err := loadReport(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: guard: %v\n", err)
		return 1
	}
	budget := committed.LongPoles.SuiteBudgetSeconds
	if budget <= 0 {
		budget = suiteBudgetSeconds
	}

	fmt.Fprintf(os.Stderr, "bench: guard: suite sequential (full scale, observed)...\n")
	start := time.Now()
	specSeconds, _ := benchSpecBreakdown(false)
	suiteSeconds := round3(time.Since(start).Seconds())

	printDelta(os.Stderr, poleDelta(suiteSeconds, specSeconds))
	failed := false
	for _, p := range poleBaseline {
		was := committed.Suite.SpecSeconds[p.ID]
		now := specSeconds[p.ID]
		if was > 0 && now > was*1.25 {
			fmt.Fprintf(os.Stderr, "bench: guard: %s regressed: %.3f s vs committed %.3f s (>25%%)\n",
				p.ID, now, was)
			failed = true
		}
	}
	if suiteSeconds > budget {
		fmt.Fprintf(os.Stderr, "bench: guard: suite sequential %.3f s exceeds budget %.1f s\n",
			suiteSeconds, budget)
		failed = true
	}
	if failed {
		return 1
	}
	fmt.Fprintf(os.Stderr, "bench: guard: ok (suite %.3f s within %.1f s budget, long poles within 25%% of committed)\n",
		suiteSeconds, budget)
	return 0
}

// loadReport reads a committed bench report.
func loadReport(path string) (Report, error) {
	var rep Report
	raw, err := os.ReadFile(path)
	if err != nil {
		return rep, fmt.Errorf("cannot read committed report: %w", err)
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		return rep, fmt.Errorf("cannot parse %s: %w", path, err)
	}
	return rep, nil
}

// writeReport writes a bench report as indented JSON.
func writeReport(path string, rep Report) error {
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(enc, '\n'), 0o644)
}

func round3(v float64) float64 { return float64(int64(v*1000+0.5)) / 1000 }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
