// The serve benchmark: a load generator for the scenario service
// (northstar serve). It stands a server up in-process behind a real
// HTTP listener, warms the result cache with the whole scenario
// inventory, then measures two traffic classes separately: cached
// queries (round-robin over warmed keys — the content-addressed LRU's
// fast path) and uncached queries (unique seed overrides, every one a
// cache miss that runs the interpreter). qps and latency percentiles
// for both go into the report's serve section (northstar-bench/v6).
package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"northstar/internal/experiments"
	"northstar/internal/serve"
)

// ServeRes is the serve section of the bench report.
type ServeRes struct {
	Scenarios   int       `json:"scenarios"`
	Clients     int       `json:"clients"`
	PoolWorkers int       `json:"pool_workers"`
	Cached      ServeLoad `json:"cached"`
	Uncached    ServeLoad `json:"uncached"`
}

// ServeLoad is one traffic class's measurement: total requests, wall
// clock across all clients, aggregate throughput, and client-observed
// latency percentiles.
type ServeLoad struct {
	Requests int     `json:"requests"`
	Seconds  float64 `json:"seconds"`
	QPS      float64 `json:"qps"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// benchServe measures the scenario service over a real TCP listener:
// clients goroutines, each with a keep-alive connection, issuing
// sequential POST /v1/scenario requests.
func benchServe() ServeRes {
	srv := serve.New(serve.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ids := make([]string, 0, len(experiments.Scenarios()))
	for _, sc := range experiments.Scenarios() {
		ids = append(ids, sc.ID)
	}

	const clients = 8
	res := ServeRes{
		Scenarios:   len(ids),
		Clients:     clients,
		PoolWorkers: 0, // serve.Config default: GOMAXPROCS
	}

	// Warm every key once so the cached class measures only hits.
	for _, id := range ids {
		postServe(ts, fmt.Sprintf(`{"id":%q,"quick":true}`, id))
	}

	// Cached: round-robin over the warmed inventory.
	cached := func(client, i int) string {
		return fmt.Sprintf(`{"id":%q,"quick":true}`, ids[(client*31+i)%len(ids)])
	}
	res.Cached = serveLoad(ts, clients, 1000, cached)

	// Uncached: unique seed overrides on the cheapest analytic spec —
	// every request is a distinct content address, so every request
	// runs the interpreter. Client c, request i gets seed 1e6+c*1e5+i,
	// disjoint from anything warmed above.
	uncached := func(client, i int) string {
		return fmt.Sprintf(`{"id":"E1","quick":true,"seed":%d}`, 1_000_000+client*100_000+i)
	}
	res.Uncached = serveLoad(ts, clients, 50, uncached)

	if st := srv.CacheStats(); st.Hits < int64(res.Cached.Requests) {
		fatal(fmt.Errorf("serve bench: cached phase was not served from cache: %+v", st))
	}
	return res
}

// serveLoad drives perClient requests from each of clients goroutines
// and aggregates throughput and latency. body(client, i) names the
// request each slot sends.
func serveLoad(ts *httptest.Server, clients, perClient int, body func(client, i int) string) ServeLoad {
	total := clients * perClient
	durations := make([]time.Duration, total)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				t0 := time.Now()
				postServe(ts, body(c, i))
				durations[c*perClient+i] = time.Since(t0)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(total-1))
		return round3(float64(durations[idx].Nanoseconds()) / 1e6)
	}
	return ServeLoad{
		Requests: total,
		Seconds:  round3(elapsed),
		QPS:      round3(float64(total) / elapsed),
		P50Ms:    pct(0.50),
		P95Ms:    pct(0.95),
		P99Ms:    pct(0.99),
	}
}

// postServe issues one scenario request and dies on anything but 200 —
// a bench run against a misbehaving server measures nothing.
func postServe(ts *httptest.Server, body string) {
	resp, err := http.Post(ts.URL+"/v1/scenario", "application/json", strings.NewReader(body))
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("serve bench: %s -> %d: %s", body, resp.StatusCode, data))
	}
}

// runServeBench is `bench -serve`: measure only the serve section and
// merge it into the committed report, leaving every other section's
// numbers untouched. Exits nonzero if cached throughput falls below
// the 1000 qps floor the service is specified to.
func runServeBench(reportPath string) int {
	rep, err := loadReport(reportPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: serve: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "bench: serve: scenario service load (cached + uncached)...\n")
	rep.Schema = benchSchema
	rep.Serve = benchServe()
	if err := writeReport(reportPath, rep); err != nil {
		fmt.Fprintf(os.Stderr, "bench: serve: %v\n", err)
		return 1
	}
	s := rep.Serve
	fmt.Fprintf(os.Stderr, "bench: serve: cached %d reqs %.0f qps (p50 %.2f ms, p95 %.2f ms, p99 %.2f ms); uncached %d reqs %.0f qps (p99 %.2f ms)\n",
		s.Cached.Requests, s.Cached.QPS, s.Cached.P50Ms, s.Cached.P95Ms, s.Cached.P99Ms,
		s.Uncached.Requests, s.Uncached.QPS, s.Uncached.P99Ms)
	if s.Cached.QPS < 1000 {
		fmt.Fprintf(os.Stderr, "bench: serve: cached throughput %.0f qps below the 1000 qps floor\n", s.Cached.QPS)
		return 1
	}
	return 0
}
