package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"northstar/internal/experiments"
)

// These tests exercise the command through run() exactly as a shell
// would — argv in, stdout/stderr/exit-status out — pinning the CLI
// contract: 0 clean, 1 failed run or bad arguments, 2 flag errors, and
// stdout that never changes shape based on diagnostics.

func runCmd(t *testing.T, args ...string) (status int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	status = run(args, &out, &errb)
	return status, out.String(), errb.String()
}

func TestQuickSingleExperimentMatchesGolden(t *testing.T) {
	status, stdout, stderr := runCmd(t, "-quick", "-id", "E1")
	if status != 0 {
		t.Fatalf("exit %d, stderr:\n%s", status, stderr)
	}
	golden, err := os.ReadFile(filepath.Join("..", "..", "internal", "experiments", "testdata", "golden", "E1.table"))
	if err != nil {
		t.Fatalf("golden corpus missing: %v", err)
	}
	if stdout != string(golden) {
		t.Errorf("-quick -id E1 stdout differs from the committed golden:\ngot:\n%s\nwant:\n%s", stdout, golden)
	}
}

func TestUnknownExperimentExits1(t *testing.T) {
	status, stdout, stderr := runCmd(t, "-id", "NOPE")
	if status != 1 {
		t.Fatalf("exit %d, want 1", status)
	}
	if stdout != "" {
		t.Errorf("bad -id printed tables:\n%s", stdout)
	}
	if !strings.Contains(stderr, "NOPE") {
		t.Errorf("stderr does not name the unknown experiment:\n%s", stderr)
	}
}

func TestUnknownFlagExits2(t *testing.T) {
	status, stdout, stderr := runCmd(t, "-definitely-not-a-flag")
	if status != 2 {
		t.Fatalf("exit %d, want 2", status)
	}
	if stdout != "" {
		t.Errorf("flag error printed tables:\n%s", stdout)
	}
	if !strings.Contains(stderr, "Usage") {
		t.Errorf("flag error did not print usage:\n%s", stderr)
	}
}

// -par defaults to 0 meaning one worker per CPU, but an *explicit*
// worker count below 1 is an error, not a request for the default.
func TestExplicitBadParRejected(t *testing.T) {
	for _, par := range []string{"0", "-3"} {
		status, stdout, stderr := runCmd(t, "-par", par, "-quick", "-id", "E1")
		if status != 2 {
			t.Errorf("-par %s: exit %d, want 2 (stderr: %s)", par, status, stderr)
		}
		if stdout != "" {
			t.Errorf("-par %s: tables printed despite rejected flags:\n%s", par, stdout)
		}
		if !strings.Contains(stderr, "at least 1") {
			t.Errorf("-par %s: stderr does not explain the rejection:\n%s", par, stderr)
		}
	}
	if status, _, stderr := runCmd(t, "-par", "2", "-quick", "-id", "E1"); status != 0 {
		t.Errorf("-par 2: exit %d, stderr:\n%s", status, stderr)
	}
}

// -faultinject must exit 1 while leaving stdout byte-identical to the
// healthy run: the injected specs all fail in isolation, before printing.
func TestFaultInjectExits1WithIdenticalStdout(t *testing.T) {
	if testing.Short() {
		t.Skip("waits out the FI-HANG watchdog")
	}
	_, healthy, _ := runCmd(t, "-quick", "-id", "E1")
	status, injected, stderr := runCmd(t, "-quick", "-id", "E1", "-faultinject", "-spec-timeout", "2s")
	if status != 1 {
		t.Fatalf("exit %d, want 1", status)
	}
	if injected != healthy {
		t.Errorf("fault-injected stdout differs from healthy run:\ngot:\n%s\nwant:\n%s", injected, healthy)
	}
	for _, id := range []string{"FI-ERR", "FI-PANIC", "FI-HANG"} {
		if !strings.Contains(stderr, id) {
			t.Errorf("stderr does not report %s:\n%s", id, stderr)
		}
	}
}

// TestDescribeEmitsValidJSON pins -describe's contract for every
// migrated experiment: exit 0, parseable JSON on stdout, nothing run.
func TestDescribeEmitsValidJSON(t *testing.T) {
	for _, sc := range experiments.Scenarios() {
		status, stdout, stderr := runCmd(t, "-describe", sc.ID)
		if status != 0 {
			t.Fatalf("-describe %s: exit %d, stderr:\n%s", sc.ID, status, stderr)
		}
		var parsed experiments.ScenarioSpec
		if err := json.Unmarshal([]byte(stdout), &parsed); err != nil {
			t.Fatalf("-describe %s output is not JSON: %v\n%s", sc.ID, err, stdout)
		}
		if parsed.ID != sc.ID || parsed.Model != sc.Model {
			t.Errorf("-describe %s returned spec for %q/%q", sc.ID, parsed.ID, parsed.Model)
		}
	}
}

// TestDescribeUnknownExits1 covers both a non-experiment and a bespoke
// experiment with no spec: neither has a wire form yet.
func TestDescribeUnknownExits1(t *testing.T) {
	for _, id := range []string{"NOPE", "E8"} {
		status, stdout, stderr := runCmd(t, "-describe", id)
		if status != 1 {
			t.Errorf("-describe %s: exit %d, want 1", id, status)
		}
		if stdout != "" {
			t.Errorf("-describe %s printed output:\n%s", id, stdout)
		}
		if !strings.Contains(stderr, id) {
			t.Errorf("-describe %s: stderr does not name it:\n%s", id, stderr)
		}
	}
}

// TestDescribeRoundTripMatchesGolden is the wire-format proof: the JSON
// a client reads back from -describe, parsed and run in quick mode,
// must reproduce the committed golden table byte for byte.
func TestDescribeRoundTripMatchesGolden(t *testing.T) {
	for _, sc := range experiments.Scenarios() {
		status, stdout, stderr := runCmd(t, "-describe", sc.ID)
		if status != 0 {
			t.Fatalf("-describe %s: exit %d, stderr:\n%s", sc.ID, status, stderr)
		}
		var parsed experiments.ScenarioSpec
		if err := json.Unmarshal([]byte(stdout), &parsed); err != nil {
			t.Fatal(err)
		}
		tab, err := parsed.Run(true)
		if err != nil {
			t.Fatalf("%s: parsed spec does not run: %v", sc.ID, err)
		}
		golden, err := os.ReadFile(filepath.Join("..", "..", "internal", "experiments", "testdata", "golden", sc.ID+".table"))
		if err != nil {
			t.Fatalf("golden corpus missing: %v", err)
		}
		if got := tab.String(); got != string(golden) {
			t.Errorf("%s: describe → parse → run differs from the golden corpus:\ngot:\n%s\nwant:\n%s",
				sc.ID, got, golden)
		}
	}
}

// brokenWriter dies after n bytes, like a pipe whose reader went away.
type brokenWriter struct {
	n       int
	written int
}

func (b *brokenWriter) Write(p []byte) (int, error) {
	if b.written >= b.n {
		return 0, errors.New("broken pipe")
	}
	b.written += len(p)
	return len(p), nil
}

func TestBrokenStdoutExits1(t *testing.T) {
	var errb bytes.Buffer
	status := run([]string{"-quick", "-id", "E1"}, &brokenWriter{n: 10}, &errb)
	if status != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", status, errb.String())
	}
	if !strings.Contains(errb.String(), "broken pipe") {
		t.Errorf("stderr does not surface the write failure:\n%s", errb.String())
	}
}

func TestCSVOutputMatchesTable(t *testing.T) {
	dir := t.TempDir()
	status, _, stderr := runCmd(t, "-quick", "-id", "E1", "-csv", dir)
	if status != 0 {
		t.Fatalf("exit %d, stderr:\n%s", status, stderr)
	}
	got, err := os.ReadFile(filepath.Join(dir, "E1.csv"))
	if err != nil {
		t.Fatalf("-csv wrote no E1.csv: %v", err)
	}
	if len(got) == 0 || !strings.HasPrefix(string(got), "year") {
		t.Errorf("E1.csv does not start with the header row:\n%s", got)
	}
}
