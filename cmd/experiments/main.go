// Command experiments regenerates the evaluation suite E1-E12 (see
// DESIGN.md §3 and EXPERIMENTS.md).
//
// Usage:
//
//	experiments                   # run everything, parallel across CPUs
//	experiments -par 1            # sequential (same bytes, slower)
//	experiments -par 4            # bounded worker pool
//	experiments -quick            # CI-scale sweeps
//	experiments -id E7            # one experiment
//	experiments -describe E7      # dump E7's ScenarioSpec as JSON and exit
//	experiments -csv out/         # also write one CSV per table into out/
//	experiments -progress         # live per-spec status lines on stderr
//	experiments -trace t.json     # Chrome trace_event JSON (Perfetto)
//	experiments -metrics m.json   # metrics snapshot JSON
//	experiments -cpuprofile p.out # pprof CPU profile of the run
//	experiments -memprofile m.out # pprof heap profile after the run
//	experiments -spec-timeout 60s # abandon an experiment stuck past its budget
//	experiments -retries 1        # re-run a failed experiment once
//	experiments -faultinject      # dev/CI: append specs that panic, hang, error
//	experiments -queue calendar   # pin every kernel's event-queue backend
//
// -queue selects the event-queue backend (auto, heap, calendar) for every
// kernel the run creates. The kernel's ordering contract is a total order
// on (at, seq) independent of backend, so stdout is byte-identical for
// all three — CI runs the suite pinned to calendar and diffs it against
// the golden corpus to prove it.
//
// Tables always print in suite order (E1 … X7) regardless of -par; every
// number in them is virtual time, so the bytes are identical for any
// worker count — and for any combination of observability flags, which
// write only to their own files and stderr. If an experiment fails — by
// returning an error, panicking, producing a malformed table, or
// exceeding -spec-timeout — the remaining experiments still run and
// print, the failure (with its stack or goroutine dump) is reported on
// stderr, and the exit status is non-zero. A write error on stdout (for
// example a broken pipe) is likewise fatal rather than silently
// truncating tables.
//
// -describe prints the declarative ScenarioSpec of a migrated experiment
// as indented JSON — the wire format a scenario service accepts — and
// exits without running anything. The JSON round-trips: parsing it back
// and calling Run reproduces the experiment's table byte for byte (CI
// proves this for every migrated ID). Experiments not yet migrated to
// specs report an error.
//
// -faultinject appends the synthetic misbehaving specs from
// experiments.FaultSpecs after the genuine suite so CI can prove the
// isolation guarantees above: the run must exit 1 while stdout stays
// byte-identical to a healthy run. Because one of those specs hangs
// forever, -faultinject defaults -spec-timeout to 10s when it is unset.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"northstar/internal/experiments"
	"northstar/internal/mc"
	"northstar/internal/obs"
	"northstar/internal/sim"
)

func main() {
	// Without a handler, Go re-raises SIGPIPE on a broken stdout and the
	// process dies mid-table with no diagnostic. Catching it turns the
	// broken pipe into an EPIPE write error that propagates through
	// Table.Fprint and the runner to a clean non-zero exit.
	signal.Notify(make(chan os.Signal, 1), syscall.SIGPIPE)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command behind the process boundary: it parses args,
// runs the suite, and returns the exit status, writing tables to stdout
// and diagnostics to stderr. Keeping it free of os.Exit and package-level
// flag state makes the exit-code contract — 0 clean, 1 failed run or bad
// arguments, 2 flag errors — directly testable.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "shrink sweeps for fast runs")
	id := fs.String("id", "", "run only this experiment (e.g. E7)")
	describe := fs.String("describe", "", "print this experiment's ScenarioSpec as JSON and exit")
	csvDir := fs.String("csv", "", "also write CSV files into this directory")
	par := fs.Int("par", 0, "worker pool size; 0 = one per CPU, 1 = sequential")
	traceFile := fs.String("trace", "", "write a Chrome trace_event JSON trace to this file (open in Perfetto)")
	metricsFile := fs.String("metrics", "", "write a metrics snapshot JSON to this file")
	progress := fs.Bool("progress", false, "print live per-spec status lines to stderr")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile to this file")
	specTimeout := fs.Duration("spec-timeout", 0, "per-experiment wall-clock budget; 0 disables the watchdog")
	retries := fs.Int("retries", 0, "re-run a failed experiment up to this many extra times")
	faultinject := fs.Bool("faultinject", false, "dev/CI: append synthetic misbehaving specs (implies -spec-timeout 10s if unset)")
	queue := fs.String("queue", "auto", "event-queue backend for every kernel: auto, heap, or calendar (output is byte-identical on all three)")
	if err := fs.Parse(args); err != nil {
		return 2 // flag package already printed the diagnostic and usage
	}
	qkind, err := sim.ParseQueueKind(*queue)
	if err != nil {
		fmt.Fprintf(stderr, "experiments: -queue %s: %v\n", *queue, err)
		return 2
	}
	sim.SetDefaultQueue(qkind)
	// The -par default of 0 means "one worker per CPU", but that is a
	// default, not a request: an explicit -par below 1 is a typo'd worker
	// count, and silently running it at full parallelism would hide it.
	parSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "par" {
			parSet = true
		}
	})
	if parSet && *par < 1 {
		fmt.Fprintf(stderr, "experiments: -par %d: worker count must be at least 1\n", *par)
		return 2
	}

	if *describe != "" {
		sc, err := experiments.ScenarioByID(*describe)
		if err != nil {
			return fail(stderr, err)
		}
		enc, err := json.MarshalIndent(sc, "", "  ")
		if err != nil {
			return fail(stderr, err)
		}
		if _, err := fmt.Fprintf(stdout, "%s\n", enc); err != nil {
			return fail(stderr, err)
		}
		return 0
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return fail(stderr, err)
		}
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(stderr, err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(stderr, err)
		}
		defer pprof.StopCPUProfile()
	}

	// Observability is opt-in: with no obs flags the runner sees a nil
	// observer and the kernels keep their nil probes.
	var observer *obs.SuiteObserver
	var trace *obs.Trace
	if *traceFile != "" || *metricsFile != "" || *progress {
		if *traceFile != "" {
			trace = obs.NewTrace()
		}
		var progressW io.Writer
		if *progress {
			progressW = stderr
		}
		observer = obs.NewSuiteObserver(nil, trace, progressW)
	}

	specs := experiments.All()
	if *id != "" {
		s, err := experiments.ByID(*id)
		if err != nil {
			return fail(stderr, err)
		}
		specs = []experiments.Spec{s}
	}
	if *faultinject {
		// The fault specs ride after the genuine suite: they all fail
		// without printing, so stdout stays byte-identical to a healthy
		// run while the exit status proves the isolation. FI-HANG parks
		// forever, so the watchdog must be armed.
		specs = append(specs, experiments.FaultSpecs()...)
		if *specTimeout <= 0 {
			*specTimeout = 10 * time.Second
		}
	}
	// Budget the intra-experiment Monte Carlo pool against the suite
	// workers: the two levels of parallelism share one CPU budget, so a
	// -par that saturates the host leaves no shard helpers (and vice
	// versa a sequential -par 1 hands the spare CPUs to the shard pool).
	// Every Monte Carlo result is bit-identical for any pool size, so
	// this only moves wall clock, never numbers.
	suiteWorkers := *par
	if suiteWorkers <= 0 {
		suiteWorkers = runtime.GOMAXPROCS(0)
	}
	mc.SetDefaultWorkers(runtime.GOMAXPROCS(0) - suiteWorkers)

	opts := experiments.Options{
		Quick:       *quick,
		Workers:     *par,
		Observer:    observer,
		SpecTimeout: *specTimeout,
		Retries:     *retries,
	}
	if observer != nil {
		opts.Summary = stderr
	}
	tables, runErr := experiments.RunSpecs(stdout, specs, opts)

	status := 0
	if runErr != nil {
		fmt.Fprintln(stderr, "experiments:", runErr)
		status = 1
	}
	if *csvDir != "" {
		for _, t := range tables {
			if t == nil {
				continue // failed experiment; reported via runErr
			}
			if err := writeCSV(*csvDir, t); err != nil {
				return fail(stderr, err)
			}
		}
	}
	if trace != nil {
		if err := writeFileWith(*traceFile, trace.WriteJSON); err != nil {
			return fail(stderr, err)
		}
	}
	if observer != nil && *metricsFile != "" {
		if err := writeFileWith(*metricsFile, observer.Registry().WriteJSON); err != nil {
			return fail(stderr, err)
		}
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fail(stderr, err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fail(stderr, err)
		}
		if err := f.Close(); err != nil {
			return fail(stderr, err)
		}
	}
	return status
}

func writeCSV(dir string, t *experiments.Table) error {
	f, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	if err := t.CSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeFileWith(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "experiments:", err)
	return 1
}
