// Command experiments regenerates the evaluation suite E1-E12 (see
// DESIGN.md §3 and EXPERIMENTS.md).
//
// Usage:
//
//	experiments               # run everything at full scale, text tables
//	experiments -quick        # CI-scale sweeps
//	experiments -id E7        # one experiment
//	experiments -csv out/     # also write one CSV per table into out/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"northstar/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "shrink sweeps for fast runs")
	id := flag.String("id", "", "run only this experiment (e.g. E7)")
	csvDir := flag.String("csv", "", "also write CSV files into this directory")
	flag.Parse()

	specs := experiments.All()
	if *id != "" {
		s, err := experiments.ByID(*id)
		if err != nil {
			fatal(err)
		}
		specs = []experiments.Spec{s}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
	}
	for _, s := range specs {
		t, err := s.Run(*quick)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", s.ID, err))
		}
		t.Fprint(os.Stdout)
		if *csvDir != "" {
			f, err := os.Create(filepath.Join(*csvDir, t.ID+".csv"))
			if err != nil {
				fatal(err)
			}
			if err := t.CSV(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
