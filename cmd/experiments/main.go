// Command experiments regenerates the evaluation suite E1-E12 (see
// DESIGN.md §3 and EXPERIMENTS.md).
//
// Usage:
//
//	experiments               # run everything, parallel across CPUs
//	experiments -par 1        # sequential (same bytes, slower)
//	experiments -par 4        # bounded worker pool
//	experiments -quick        # CI-scale sweeps
//	experiments -id E7        # one experiment
//	experiments -csv out/     # also write one CSV per table into out/
//
// Tables always print in suite order (E1 … X7) regardless of -par; every
// number in them is virtual time, so the bytes are identical for any
// worker count. If an experiment fails, the remaining experiments still
// run and print, the failures are reported on stderr, and the exit status
// is non-zero.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"northstar/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "shrink sweeps for fast runs")
	id := flag.String("id", "", "run only this experiment (e.g. E7)")
	csvDir := flag.String("csv", "", "also write CSV files into this directory")
	par := flag.Int("par", 0, "worker pool size; 0 = one per CPU, 1 = sequential")
	flag.Parse()

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
	}

	var tables []*experiments.Table
	var runErr error
	if *id != "" {
		s, err := experiments.ByID(*id)
		if err != nil {
			fatal(err)
		}
		t, err := s.Run(*quick)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", s.ID, err))
		}
		t.Fprint(os.Stdout)
		tables = []*experiments.Table{t}
	} else {
		tables, runErr = experiments.RunAllParallel(os.Stdout, *quick, *par)
	}

	if *csvDir != "" {
		for _, t := range tables {
			if t == nil {
				continue // failed experiment; reported via runErr
			}
			if err := writeCSV(*csvDir, t); err != nil {
				fatal(err)
			}
		}
	}
	if runErr != nil {
		fatal(runErr)
	}
}

func writeCSV(dir string, t *experiments.Table) error {
	f, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	if err := t.CSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
