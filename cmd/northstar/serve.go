package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"northstar/internal/experiments"
	"northstar/internal/serve"
)

// cmdServe runs the scenario service: a long-running HTTP/JSON daemon
// evaluating ScenarioSpec requests behind a content-addressed result
// cache (see internal/serve). It blocks until SIGINT/SIGTERM, then
// shuts down gracefully.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8424", "listen address")
	cacheMB := fs.Int("cache-mb", 64, "result cache budget, MiB of response bodies")
	pool := fs.Int("pool", 0, "execution width of the request pool (0 = GOMAXPROCS)")
	maxBodyKB := fs.Int("max-body-kb", 1024, "request body cap, KiB")
	fs.Parse(args)
	if *cacheMB < 1 {
		return fmt.Errorf("serve: -cache-mb %d: budget must be at least 1 MiB", *cacheMB)
	}
	if *maxBodyKB < 1 {
		return fmt.Errorf("serve: -max-body-kb %d: cap must be at least 1 KiB", *maxBodyKB)
	}

	srv := serve.New(serve.Config{
		CacheBytes:   int64(*cacheMB) << 20,
		PoolWorkers:  *pool,
		MaxBodyBytes: int64(*maxBodyKB) << 10,
	})
	defer srv.Close()
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// Graceful shutdown: stop accepting, drain in-flight requests, then
	// return so the deferred Close can stop the worker pool.
	idle := make(chan error, 1)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "northstar: %v, shutting down\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		idle <- hs.Shutdown(ctx)
	}()

	workers := *pool
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(os.Stderr, "northstar: serving %d scenarios on http://%s (cache %d MiB, pool width %d)\n",
		len(experiments.Scenarios()), *addr, *cacheMB, workers)
	if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return <-idle
}
