// Command northstar is the interactive front end to the commodity-
// cluster futures laboratory.
//
// Usage:
//
//	northstar project  [-budget 1e6] [-scenario moore-only] [-from 2002] [-to 2012]
//	northstar simulate [-nodes 64] [-arch conventional] [-fabric myrinet-2000]
//	                   [-year 2002] [-app stencil] [-packet] [-topo fattree]
//	northstar schedule [-nodes 128] [-jobs 2000] [-load 0.85] [-policy all]
//	northstar faults   [-nodes 4096] [-work 168] [-delta 5]
//	northstar explore  [-budget 20e6] [-target 1e15] [-year 2010]
//	northstar serve    [-addr 127.0.0.1:8424] [-cache-mb 64] [-pool 0]
//
// Every number it prints is virtual-time simulation or analytic
// projection; runs are deterministic given -seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"northstar/internal/cluster"
	"northstar/internal/core"
	"northstar/internal/fault"
	"northstar/internal/machine"
	"northstar/internal/msg"
	"northstar/internal/network"
	"northstar/internal/node"
	"northstar/internal/sched"
	"northstar/internal/sim"
	"northstar/internal/stats"
	"northstar/internal/tech"
	"northstar/internal/topology"
	"northstar/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "project":
		err = cmdProject(args)
	case "simulate":
		err = cmdSimulate(args)
	case "schedule":
		err = cmdSchedule(args)
	case "faults":
		err = cmdFaults(args)
	case "explore":
		err = cmdExplore(args)
	case "serve":
		err = cmdServe(args)
	case "topo":
		err = cmdTopo(args)
	case "frontier":
		err = cmdFrontier(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "northstar: unknown command %q\n\n", cmd)
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "northstar:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: northstar <command> [flags]

commands:
  project    project what a budget buys each year under a scenario
  simulate   run an application skeleton on a simulated machine
  schedule   compare batch-scheduling policies on a synthetic trace
  faults     MTBF, availability, and checkpoint planning at scale
  explore    trans-petaflops crossings and the innovation waterfall
  serve      scenario service: HTTP/JSON daemon with a result cache
  topo       interconnect topology metrics and failure analysis
  frontier   the Pareto menu of buildable configurations at a year

run 'northstar <command> -h' for flags.`)
	os.Exit(2)
}

func scenarioByName(name string) (core.Scenario, error) {
	for _, s := range core.Scenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	var names []string
	for _, s := range core.Scenarios() {
		names = append(names, s.Name)
	}
	return core.Scenario{}, fmt.Errorf("unknown scenario %q (have: %s)", name, strings.Join(names, ", "))
}

func cmdProject(args []string) error {
	fs := flag.NewFlagSet("project", flag.ExitOnError)
	budget := fs.Float64("budget", 1e6, "hardware budget, dollars")
	power := fs.Float64("power", 0, "power cap, watts (0 = none)")
	scn := fs.String("scenario", "moore-only", "scenario name")
	from := fs.Float64("from", 2002, "first year")
	to := fs.Float64("to", 2012, "last year")
	fs.Parse(args)

	s, err := scenarioByName(*scn)
	if err != nil {
		return err
	}
	e := core.Explorer{
		Constraint: cluster.Constraint{BudgetDollars: *budget, PowerWatts: *power},
		FirstYear:  *from,
		LastYear:   *to,
	}
	pts, err := e.Project(s)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "year\tnodes\tarch\tfabric\tpeak TF\tsustained TF\tpower kW\tracks\tMTBF")
	for _, p := range pts {
		sustained, _ := p.Metrics.LinpackEstimate()
		fmt.Fprintf(w, "%.0f\t%d\t%s\t%s\t%.2f\t%.2f\t%.0f\t%d\t%v\n",
			p.Year, p.Metrics.Spec.Nodes, p.Metrics.Spec.Arch, p.Metrics.Spec.Fabric,
			p.Metrics.PeakFlops/1e12, sustained/1e12, p.Metrics.PowerWatts/1e3,
			p.Metrics.Racks, p.Metrics.MTBF)
	}
	return w.Flush()
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	nodes := fs.Int("nodes", 64, "cluster size")
	arch := fs.String("arch", "conventional", "node architecture")
	fabric := fs.String("fabric", "myrinet-2000", "fabric preset name")
	year := fs.Float64("year", 2002, "technology year")
	appName := fs.String("app", "stencil", "app: pingpong|stencil|fft|ep|cg|hpl|masterworker")
	packet := fs.Bool("packet", false, "packet-level network simulation")
	topo := fs.String("topo", "fattree", "packet topology: crossbar|fattree|torus2d|torus3d|hypercube")
	seed := fs.Int64("seed", 1, "simulation seed")
	fs.Parse(args)

	preset, err := network.PresetByName(*fabric)
	if err != nil {
		return err
	}
	nm, err := node.Build(node.Arch(*arch), tech.Default2002(), *year)
	if err != nil {
		return err
	}
	m, err := machine.New(machine.Config{
		Nodes:       *nodes,
		Node:        nm,
		Fabric:      preset,
		PacketLevel: *packet,
		Topology:    machine.Topology(*topo),
		Seed:        *seed,
	})
	if err != nil {
		return err
	}
	var app workload.App
	switch *appName {
	case "pingpong":
		app = workload.PingPong{Bytes: 64 << 10, Reps: 100}
	case "stencil":
		app = workload.Stencil2D{GridX: 4096, GridY: 4096, Iters: 50}
	case "fft":
		app = workload.FFT1D{N: 1 << 22}
	case "ep":
		app = workload.EP{FlopsPerRank: 1e10}
	case "cg":
		app = workload.CG{N: 1 << 22, NNZPerRow: 27, Iters: 50}
	case "hpl":
		app = workload.HPL{N: 16384, NB: 128}
	case "masterworker":
		app = workload.MasterWorker{Tasks: 500, TaskFlops: 1e8, ResultBytes: 4096}
	default:
		return fmt.Errorf("unknown app %q", *appName)
	}
	fmt.Println("machine:", m)
	rep, err := workload.Execute(m, msg.Options{}, app)
	if err != nil {
		return err
	}
	fmt.Println("report: ", rep)
	fmt.Printf("per-rank mean: compute %v, blocked-in-comm %v\n", rep.MeanComputeTime, rep.MeanCommTime)
	return nil
}

func cmdSchedule(args []string) error {
	fs := flag.NewFlagSet("schedule", flag.ExitOnError)
	nodes := fs.Int("nodes", 128, "cluster size")
	jobs := fs.Int("jobs", 2000, "jobs in the synthetic trace")
	load := fs.Float64("load", 0.85, "offered load")
	policy := fs.String("policy", "all", "fcfs|easy|conservative|gang|all")
	seed := fs.Int64("seed", 1, "trace seed")
	swf := fs.String("swf", "", "replay this SWF trace file instead of generating one")
	fs.Parse(args)

	var trace []*sched.Job
	var err error
	if *swf != "" {
		f, ferr := os.Open(*swf)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		trace, err = sched.ReadSWF(f, *nodes)
		if err == nil {
			fmt.Printf("replaying %d jobs from %s\n", len(trace), *swf)
		}
	} else {
		trace, err = sched.GenerateTrace(sched.TraceConfig{
			Jobs: *jobs, MaxNodes: *nodes, Load: *load, Seed: *seed,
		})
	}
	if err != nil {
		return err
	}
	clone := func() []*sched.Job {
		out := make([]*sched.Job, len(trace))
		for i, j := range trace {
			cp := *j
			out[i] = &cp
		}
		return out
	}
	run := func(name string) (sched.Result, error) {
		switch name {
		case "fcfs":
			return sched.Simulate(*nodes, clone(), sched.FCFS{})
		case "easy":
			return sched.Simulate(*nodes, clone(), sched.EASY{})
		case "conservative":
			return sched.Simulate(*nodes, clone(), sched.Conservative{})
		case "gang":
			return sched.SimulateGang(*nodes, clone(), sched.GangConfig{})
		default:
			return sched.Result{}, fmt.Errorf("unknown policy %q", name)
		}
	}
	names := []string{*policy}
	if *policy == "all" {
		names = []string{"fcfs", "easy", "conservative", "gang"}
	}
	for _, n := range names {
		res, err := run(n)
		if err != nil {
			return err
		}
		fmt.Println(res)
	}
	return nil
}

func cmdFaults(args []string) error {
	fs := flag.NewFlagSet("faults", flag.ExitOnError)
	nodes := fs.Int("nodes", 4096, "cluster size")
	nodeMTBFDays := fs.Float64("node-mtbf", 1000, "per-node MTBF, days")
	repairHours := fs.Float64("repair", 4, "repair time, hours")
	workHours := fs.Float64("work", 168, "job useful work, hours")
	deltaMin := fs.Float64("delta", 5, "checkpoint cost, minutes")
	fs.Parse(args)

	sys := fault.System{
		Nodes:    *nodes,
		Lifetime: stats.Exponential{Rate: 1 / (*nodeMTBFDays * float64(sim.Day))},
		Repair:   stats.Constant{V: *repairHours * float64(sim.Hour)},
	}
	mtbf := sys.MTBF()
	fmt.Printf("%d nodes at %.0f-day node MTBF:\n", *nodes, *nodeMTBFDays)
	fmt.Printf("  system MTBF          %v\n", mtbf)
	fmt.Printf("  all-up availability  %.4g\n", sys.AllUpAvailability())

	c := fault.Checkpoint{
		Work:     sim.Time(*workHours) * sim.Hour,
		Overhead: sim.Time(*deltaMin) * sim.Minute,
		Restart:  10 * sim.Minute,
		MTBF:     mtbf,
		Interval: sim.Hour,
	}
	young := fault.YoungInterval(c.Overhead, mtbf)
	daly := fault.DalyInterval(c.Overhead, mtbf)
	opt, res, err := c.OptimalInterval(200, 1)
	if err != nil {
		return err
	}
	fmt.Printf("checkpoint planning for a %.0f h job (delta %.0f min):\n", *workHours, *deltaMin)
	fmt.Printf("  Young interval       %v\n", young)
	fmt.Printf("  Daly interval        %v\n", daly)
	fmt.Printf("  simulated optimum    %v (useful work %.1f%%, %.1f failures/run)\n",
		opt, res.UsefulFraction*100, res.MeanFailures)
	return nil
}

func cmdExplore(args []string) error {
	fs := flag.NewFlagSet("explore", flag.ExitOnError)
	budget := fs.Float64("budget", 20e6, "hardware budget, dollars")
	target := fs.Float64("target", 1e15, "sustained flops target")
	year := fs.Float64("year", 2010, "waterfall evaluation year")
	lastYear := fs.Float64("last", 2020, "crossing search horizon")
	fs.Parse(args)

	e := core.Explorer{
		Constraint: cluster.Constraint{BudgetDollars: *budget},
		LastYear:   *lastYear,
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "crossing of %s sustained under %s:\n", tech.Engineering(*target, "flop/s"), tech.Dollars(*budget))
	fmt.Fprintln(w, "scenario\tyear\tnodes\tarch\tfabric")
	for _, s := range core.Scenarios() {
		c, err := e.FindCrossing(s, *target)
		if err != nil {
			return err
		}
		yr := fmt.Sprintf("%.1f", c.Year)
		if !c.Reached {
			yr = fmt.Sprintf("> %.0f", c.Year)
		}
		fmt.Fprintf(w, "%s\t%s\t%d\t%s\t%s\n", c.Scenario, yr, c.Metrics.Spec.Nodes,
			c.Metrics.Spec.Arch, c.Metrics.Spec.Fabric)
	}
	w.Flush()

	fmt.Printf("\ninnovation waterfall at %.0f:\n", *year)
	steps, err := e.Waterfall(*year, core.Scenarios())
	if err != nil {
		return err
	}
	base := steps[0].Value
	for _, s := range steps {
		fmt.Printf("  %-16s %10s  (%.2fx)\n", s.Scenario,
			tech.Engineering(s.Value, "flop/s"), s.Value/base)
	}
	return nil
}

func cmdTopo(args []string) error {
	fs := flag.NewFlagSet("topo", flag.ExitOnError)
	kind := fs.String("kind", "fattree", "crossbar|fattree|torus2d|torus3d|hypercube")
	nodes := fs.Int("nodes", 64, "endpoints to cover")
	failures := fs.Int("failures", 0, "core links to fail before reporting")
	fs.Parse(args)

	var g *topology.Graph
	switch *kind {
	case "crossbar":
		g = topology.Crossbar(*nodes)
	case "fattree":
		levels := 1
		for pw := 4; pw < *nodes; pw *= 4 {
			levels++
		}
		g = topology.FatTree(4, levels)
	case "torus2d":
		side := 1
		for side*side < *nodes {
			side++
		}
		g = topology.Torus2D(side, side)
	case "torus3d":
		side := 1
		for side*side*side < *nodes {
			side++
		}
		g = topology.Torus3D(side, side, side)
	case "hypercube":
		dim := 0
		for 1<<uint(dim) < *nodes {
			dim++
		}
		g = topology.Hypercube(dim)
	default:
		return fmt.Errorf("unknown topology %q", *kind)
	}
	failed := 0
	for e := 0; e < g.Edges() && failed < *failures; e++ {
		ed := g.Edge(e)
		if g.Vertex(ed.A).Endpoint || g.Vertex(ed.B).Endpoint {
			continue
		}
		if err := g.DisableEdge(e); err != nil {
			return err
		}
		if !g.AllEndpointsConnected() {
			if err := g.EnableEdge(e); err != nil {
				return err
			}
			continue
		}
		failed++
	}
	fmt.Printf("topology        %s\n", g.Name)
	fmt.Printf("endpoints       %d\n", g.NumEndpoints())
	fmt.Printf("switch vertices %d\n", g.Vertices()-g.NumEndpoints())
	fmt.Printf("links           %d (%d failed)\n", g.Edges(), g.DisabledEdges())
	fmt.Printf("bisection links %d\n", g.BisectionLinks)
	fmt.Printf("diameter        %d hops\n", g.Diameter())
	fmt.Printf("avg distance    %.2f hops\n", g.AvgDistance())
	fmt.Printf("connected       %v\n", g.AllEndpointsConnected())
	return nil
}

func cmdFrontier(args []string) error {
	fs := flag.NewFlagSet("frontier", flag.ExitOnError)
	budget := fs.Float64("budget", 20e6, "hardware budget, dollars")
	power := fs.Float64("power", 0, "power cap, watts (0 = none)")
	year := fs.Float64("year", 2008, "technology year")
	fs.Parse(args)

	e := core.Explorer{Constraint: cluster.Constraint{BudgetDollars: *budget, PowerWatts: *power}}
	pts, err := e.Frontier(tech.Default2002(), *year)
	if err != nil {
		return err
	}
	if len(pts) == 0 {
		fmt.Println("no feasible configuration under the constraint")
		return nil
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "sustained TF\tcost\tpower kW\tarch\tfabric\tnodes\tpareto")
	for _, p := range pts {
		mark := ""
		if p.Pareto {
			mark = "*"
		}
		fmt.Fprintf(w, "%.2f\t%s\t%.0f\t%s\t%s\t%d\t%s\n",
			p.Score/1e12, tech.Dollars(p.Metrics.CostDollars), p.Metrics.PowerWatts/1e3,
			p.Metrics.Spec.Arch, p.Metrics.Spec.Fabric, p.Metrics.Spec.Nodes, mark)
	}
	return w.Flush()
}
