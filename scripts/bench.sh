#!/bin/sh
# Regenerate BENCH_runner.json (kernel throughput + suite wall clock) and
# print the go-test microbenchmarks for cross-checking. Run from the repo
# root. Wall-clock numbers are host-dependent: compare only runs from the
# same machine. See EXPERIMENTS.md "Performance" for the JSON format.
set -e
cd "$(dirname "$0")/.."

echo "== go test microbenchmarks (cross-check) =="
# internal/sim is the nil-probe hot path; internal/obs repeats the
# throughput benchmark with a counting probe attached, pinning the
# enabled-observability overhead.
go test -run '^$' -bench 'BenchmarkKernel' -benchmem ./internal/sim/ ./internal/obs/

echo "== BENCH_runner.json =="
go run ./cmd/bench "$@"
