#!/bin/sh
# Regenerate BENCH_runner.json (kernel throughput + suite wall clock) and
# print the go-test microbenchmarks for cross-checking. Run from the repo
# root. Wall-clock numbers are host-dependent: compare only runs from the
# same machine. See EXPERIMENTS.md "Performance" for the JSON format.
set -e
cd "$(dirname "$0")/.."

echo "== go test microbenchmarks (cross-check) =="
# internal/sim is the nil-probe hot path; internal/obs repeats the
# throughput benchmark with a counting probe attached, pinning the
# enabled-observability overhead.
go test -run '^$' -bench 'BenchmarkKernel' -benchmem ./internal/sim/ ./internal/obs/

echo "== BENCH_runner.json =="
go run ./cmd/bench "$@"

# The long-pole before/after table, re-read from the committed report so
# the printed numbers are exactly what review sees (v4 long_pole_delta).
if [ -f BENCH_runner.json ]; then
  echo "== long-pole delta (committed BENCH_runner.json) =="
  python3 - <<'EOF'
import json
d = json.load(open("BENCH_runner.json"))["long_pole_delta"]
print(f"{'spec':6} {'before-s':>10} {'after-s':>10} {'speedup':>9}")
for p in d["poles"]:
    print(f"{p['id']:6} {p['before_seconds']:10.3f} {p['after_seconds']:10.3f} {p['speedup']:8.1f}x")
print(f"{'suite':6} {d['suite_sequential_before_seconds']:10.3f} "
      f"{d['suite_sequential_after_seconds']:10.3f}   (budget {d['suite_budget_seconds']:.1f} s)")
EOF
fi
