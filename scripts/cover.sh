#!/bin/sh
# Coverage ratchet: per-package statement coverage is compared against
# the committed baseline in scripts/coverage_baseline.txt and may only
# move up. A drop of more than 0.5pt fails the build; after genuinely
# raising coverage (or adding a package), refresh the floor with
#
#   scripts/cover.sh -update
#
# The 0.5pt slack absorbs churn from moving statements around; it is not
# room to delete tests.
set -e
cd "$(dirname "$0")/.."
baseline=scripts/coverage_baseline.txt

current=$(mktemp)
trap 'rm -f "$current"' EXIT
go test -cover ./... | awk '
	$1 == "ok" {
		for (i = 3; i <= NF; i++) if ($i ~ /%$/) {
			pct = $i; sub(/%/, "", pct)
			print $2, pct
		}
	}' | sort > "$current"

if [ "$1" = "-update" ]; then
	cp "$current" "$baseline"
	echo "wrote $baseline:"
	cat "$baseline"
	exit 0
fi

if [ ! -f "$baseline" ]; then
	echo "no $baseline; run scripts/cover.sh -update to create it" >&2
	exit 1
fi

awk '
	NR == FNR { base[$1] = $2; next }
	{ cur[$1] = $2 }
	END {
		bad = 0
		for (p in base) {
			if (!(p in cur)) {
				printf "%s: in baseline (%.1f%%) but produced no coverage — package or its tests removed?\n", p, base[p]
				bad = 1
			} else if (cur[p] + 0.5 < base[p]) {
				printf "%s: coverage %.1f%% fell below the %.1f%% baseline\n", p, cur[p], base[p]
				bad = 1
			}
		}
		for (p in cur) if (!(p in base))
			printf "note: %s (%.1f%%) is not in the baseline; run scripts/cover.sh -update to ratchet it in\n", p, cur[p]
		exit bad
	}' "$baseline" "$current"
echo "coverage at or above baseline for every package"
