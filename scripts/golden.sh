#!/bin/sh
# Regenerate every verification corpus in one step:
#   - testdata/golden/<ID>.table  quick-mode golden tables + sha256 manifest
#   - results/<ID>.csv            full-mode CSVs
#   - results/full_output.txt     full-mode table stream
# Run from anywhere in the repo after an intentional table change, then
# review the diff: the golden corpus and the invariant declarations in
# internal/check are the reviewers of record for "did the science move".
set -e
cd "$(dirname "$0")/.."

echo "== quick-mode golden corpus =="
go test ./internal/experiments -run 'TestGoldenCorpus' -update -count=1 -v | grep -v '^=== \|^--- '

echo "== full-mode results/ =="
go run ./cmd/experiments -csv results > results/full_output.txt
echo "refreshed results/*.csv and results/full_output.txt"

echo "== verify =="
go test ./internal/experiments -run 'Golden|ResultsSync' -count=1
go test ./internal/check -count=1
