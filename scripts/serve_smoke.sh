#!/bin/sh
# Scenario service smoke: build northstar, start the serve daemon,
# replay the whole migrated inventory twice, and hold the service to its
# two core claims on a real socket: served tables are byte-identical to
# the committed golden corpus, and the second pass is answered from the
# content-addressed cache (observed via /varz counters, not inference).
# Run from the repo root; SERVE_SMOKE_ADDR overrides the listen address.
set -e
cd "$(dirname "$0")/.."

ADDR="${SERVE_SMOKE_ADDR:-127.0.0.1:8437}"
BASE="http://$ADDR"
TMP="$(mktemp -d)"
SRV_PID=""
trap '[ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null; rm -rf "$TMP"' EXIT

go build -o "$TMP/northstar" ./cmd/northstar
"$TMP/northstar" serve -addr "$ADDR" 2> "$TMP/serve.log" &
SRV_PID=$!

# Wait for the daemon to accept requests (5s ceiling).
ok=""
for i in $(seq 1 50); do
  if curl -sf "$BASE/healthz" > /dev/null 2>&1; then ok=1; break; fi
  sleep 0.1
done
if [ -z "$ok" ]; then
  echo "serve smoke: daemon never became healthy" >&2
  cat "$TMP/serve.log" >&2
  exit 1
fi

# Two passes over every migrated scenario: pass 1 computes, pass 2 must
# be served from cache — and both must match the golden corpus exactly.
for pass in 1 2; do
  for id in E1 E2 E3 E4 E5 E5b E6b E7 E9 E10; do
    curl -sf -X POST "$BASE/v1/scenario" -d "{\"id\":\"$id\",\"quick\":true}" \
      | python3 -c 'import json,sys; sys.stdout.write(json.load(sys.stdin)["table"])' \
      > "$TMP/$id.table"
    cmp "$TMP/$id.table" "internal/experiments/testdata/golden/$id.table"
  done
done

curl -sf "$BASE/varz" > "$TMP/varz.json"
VARZ="$TMP/varz.json" python3 - <<'EOF'
import json, os
snap = json.load(open(os.environ["VARZ"]))
assert snap["schema"] == "northstar-metrics/v2", snap["schema"]
serve = next(s for s in snap["scopes"] if s["name"] == "serve")
hits, misses = serve["counters"]["hits"], serve["counters"]["misses"]
assert misses == 10, f"expected 10 cold computations, saw misses={misses}"
assert hits >= 10, f"second pass not served from cache: hits={hits}"
lat = serve["histograms"]["request_seconds"]
assert lat["count"] == hits + misses, (lat["count"], hits, misses)
print(f"serve smoke: ok (10 scenarios x 2 passes, hits={hits}, misses={misses})")
EOF

kill "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=""
