// Package northstar is a commodity-cluster futures laboratory: a
// from-scratch reproduction of the system outlined in Thomas Sterling's
// CLUSTER 2002 keynote, "Launching into the future of commodity cluster
// computing".
//
// It bundles, behind one import path:
//
//   - a deterministic discrete-event simulation kernel (Kernel, Time);
//   - device-technology roadmaps (Roadmap) and node-architecture models
//     (NodeModel) for conventional, blade, SMP-on-chip, and
//     processor-in-memory nodes;
//   - interconnect fabrics (FabricPreset and the Fabric interface) from
//     Fast Ethernet through InfiniBand to optical circuit switching,
//     with both analytic LogGP and packet-level simulation;
//   - a user-level message-passing layer (Rank, collectives) running in
//     virtual time on a simulated Machine;
//   - application skeletons (stencil, FFT, CG, HPL, master/worker);
//   - batch scheduling (FCFS, EASY and conservative backfill, gang);
//   - failure and checkpoint/restart models (FaultSystem, Checkpoint);
//   - cluster configuration algebra (ClusterSpec -> ClusterMetrics) and
//     the trajectory Explorer that projects what a budget buys each
//     year and when commodity clusters cross the trans-Petaflops line.
//
// The facade re-exports the supported API from the internal packages;
// see DESIGN.md for the system inventory and EXPERIMENTS.md for the
// evaluation suite this library regenerates.
package northstar

import (
	"io"

	"northstar/internal/alloc"
	"northstar/internal/cluster"
	"northstar/internal/core"
	"northstar/internal/experiments"
	"northstar/internal/fault"
	"northstar/internal/machine"
	"northstar/internal/mgmt"
	"northstar/internal/msg"
	"northstar/internal/network"
	"northstar/internal/node"
	"northstar/internal/sched"
	"northstar/internal/sim"
	"northstar/internal/stats"
	"northstar/internal/storage"
	"northstar/internal/tech"
	"northstar/internal/topology"
	"northstar/internal/workload"
)

// ---- simulation kernel ----

// Time is a point in virtual time, in seconds.
type Time = sim.Time

// Common durations.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Minute      = sim.Minute
	Hour        = sim.Hour
	Day         = sim.Day
)

// Kernel is the deterministic discrete-event simulation engine.
type Kernel = sim.Kernel

// NewKernel returns a Kernel seeded for reproducibility.
func NewKernel(seed int64) *Kernel { return sim.New(seed) }

// ---- technology roadmap ----

// Roadmap is a set of exponential device-technology curves.
type Roadmap = tech.Roadmap

// Curve is one exponential projection.
type Curve = tech.Curve

// CurveKey names a roadmap quantity.
type CurveKey = tech.Key

// Roadmap curve keys.
const (
	PeakFlopsPerSocket    = tech.PeakFlopsPerSocket
	FlopsPerDollar        = tech.FlopsPerDollar
	DRAMBytesPerDollar    = tech.DRAMBytesPerDollar
	MemBandwidthPerSocket = tech.MemBandwidthPerSocket
	WattsPerSocket        = tech.WattsPerSocket
	DiskBytesPerDollar    = tech.DiskBytesPerDollar
	LinkBandwidth         = tech.LinkBandwidth
	LinkLatency           = tech.LinkLatency
	CoresPerSocket        = tech.CoresPerSocket
)

// DefaultRoadmap returns the calibration roadmap anchored at 2002.
func DefaultRoadmap() *Roadmap { return tech.Default2002() }

// PowerWallRoadmap returns the pessimistic variant in which frequency
// scaling stalls in 2005 and socket power flattens.
func PowerWallRoadmap() *Roadmap { return tech.PowerWall2005() }

// ---- node architectures ----

// Arch names a node architecture.
type Arch = node.Arch

// The node architectures of the keynote.
const (
	Conventional = node.Conventional
	Blade        = node.Blade
	SMPOnChip    = node.SMPOnChip
	SoC          = node.SoC
	PIM          = node.PIM
)

// Arches lists all node architectures.
func Arches() []Arch { return node.Arches() }

// NodeModel is a materialized node: one architecture at one year.
type NodeModel = node.Model

// BuildNode materializes an architecture at a year against a roadmap.
func BuildNode(a Arch, r *Roadmap, year float64) (NodeModel, error) { return node.Build(a, r, year) }

// ---- fabrics ----

// Fabric is a message transport between endpoints in virtual time.
type Fabric = network.Fabric

// FabricPreset parameterizes a fabric (LogGP constants, MTU, circuit
// setup).
type FabricPreset = network.Preset

// The 2002-era fabric presets.
var (
	FastEthernet    = network.FastEthernet
	GigabitEthernet = network.GigabitEthernet
	Myrinet2000     = network.Myrinet2000
	QsNet           = network.QsNet
	InfiniBand4X    = network.InfiniBand4X
	OpticalCircuit  = network.OpticalCircuit
)

// FabricPresets returns all built-in presets in capability order.
func FabricPresets() []FabricPreset { return network.Presets() }

// FabricByName returns the built-in preset with the given name.
func FabricByName(name string) (FabricPreset, error) { return network.PresetByName(name) }

// ---- machines ----

// Machine is a simulated cluster: nodes x fabric on one kernel.
type Machine = machine.Machine

// MachineConfig describes a machine to build.
type MachineConfig = machine.Config

// Topology names packet-level wirings.
type Topology = machine.Topology

// Packet-level topologies.
const (
	TopoCrossbar  = machine.TopoCrossbar
	TopoFatTree   = machine.TopoFatTree
	TopoTorus2D   = machine.TopoTorus2D
	TopoTorus3D   = machine.TopoTorus3D
	TopoHypercube = machine.TopoHypercube
)

// NewMachine builds a simulated cluster.
func NewMachine(cfg MachineConfig) (*Machine, error) { return machine.New(cfg) }

// NewWormholeFabric builds the credit-flow-controlled wormhole fabric
// directly over a topology (for custom traffic studies; machines use
// MachineConfig.Wormhole).
func NewWormholeFabric(k *Kernel, p FabricPreset, g *TopologyGraph, bufferPackets int) *network.WormholeNet {
	return network.NewWormholeNet(k, p, g, bufferPackets)
}

// ---- messaging ----

// Rank is one SPMD process of a communicator.
type Rank = msg.Rank

// Comm is a communicator bound to a machine.
type Comm = msg.Comm

// MsgOptions configures the messaging layer (eager limit, collective
// algorithms).
type MsgOptions = msg.Options

// Algo names a collective algorithm.
type Algo = msg.Algo

// Collective algorithms.
const (
	AlgoAuto              = msg.Auto
	AlgoBinomial          = msg.Binomial
	AlgoRecursiveDoubling = msg.RecursiveDoubling
	AlgoRing              = msg.Ring
	AlgoDissemination     = msg.Dissemination
	AlgoPairwise          = msg.Pairwise
	AlgoLinear            = msg.Linear
	AlgoSMPAware          = msg.SMPAware
)

// Wildcards for Rank.Recv.
const (
	AnySource = msg.AnySource
	AnyTag    = msg.AnyTag
)

// RunSPMD executes fn on every rank of machine m and returns the
// completion time.
func RunSPMD(m *Machine, opts MsgOptions, fn func(r *Rank)) (Time, error) {
	return msg.Run(m, opts, fn)
}

// NewComm returns a communicator for post-run statistics access.
func NewComm(m *Machine, opts MsgOptions) *Comm { return msg.NewComm(m, opts) }

// ---- workloads ----

// App is a parallel application skeleton.
type App = workload.App

// AppReport summarizes one application execution.
type AppReport = workload.Report

// Application skeletons.
type (
	// PingPong is the latency/bandwidth microbenchmark.
	PingPong = workload.PingPong
	// Stencil2D is an iterative Jacobi halo-exchange code.
	Stencil2D = workload.Stencil2D
	// FFT1D is a transpose-method distributed FFT.
	FFT1D = workload.FFT1D
	// EP is the embarrassingly parallel control kernel.
	EP = workload.EP
	// CG is a sparse conjugate-gradient-style solver.
	CG = workload.CG
	// HPL is a dense LU factorization in the Linpack mold.
	HPL = workload.HPL
	// MasterWorker is a task farm.
	MasterWorker = workload.MasterWorker
	// Sweep2D is a pipelined wavefront computation (Sn transport style).
	Sweep2D = workload.Sweep2D
	// MG is a multigrid V-cycle (NAS MG pattern).
	MG = workload.MG
	// IS is an integer sort (NAS IS pattern): histogram + alltoall.
	IS = workload.IS
)

// ExecuteApp runs an application skeleton on a machine.
func ExecuteApp(m *Machine, opts MsgOptions, app App) (AppReport, error) {
	return workload.Execute(m, opts, app)
}

// ---- scheduling ----

// Job is a batch job.
type Job = sched.Job

// TraceConfig parameterizes the synthetic workload generator.
type TraceConfig = sched.TraceConfig

// SchedPolicy decides which queued jobs start when state changes.
type SchedPolicy = sched.Policy

// SchedResult summarizes a scheduling run.
type SchedResult = sched.Result

// GangConfig parameterizes gang scheduling.
type GangConfig = sched.GangConfig

// Scheduling policies.
type (
	// FCFS runs jobs strictly in arrival order.
	FCFS = sched.FCFS
	// EASY is aggressive backfilling with one reservation.
	EASY = sched.EASY
	// Conservative backfilling reserves for every queued job.
	Conservative = sched.Conservative
	// SJF is shortest-job-first backfilling.
	SJF = sched.SJF
)

// GenerateTrace produces a synthetic job trace.
func GenerateTrace(cfg TraceConfig) ([]*Job, error) { return sched.GenerateTrace(cfg) }

// ReadSWF parses a Standard Workload Format trace (Parallel Workloads
// Archive); maxNodes > 0 drops jobs wider than the target cluster.
func ReadSWF(r io.Reader, maxNodes int) ([]*Job, error) { return sched.ReadSWF(r, maxNodes) }

// WriteSWF writes jobs in Standard Workload Format.
func WriteSWF(w io.Writer, jobs []*Job) error { return sched.WriteSWF(w, jobs) }

// WriteTimeline writes a completed schedule as Gantt-ready CSV.
func WriteTimeline(w io.Writer, jobs []*Job) error { return sched.WriteTimeline(w, jobs) }

// Schedule runs jobs through a space-sharing policy.
func Schedule(nodes int, jobs []*Job, p SchedPolicy) (SchedResult, error) {
	return sched.Simulate(nodes, jobs, p)
}

// ScheduleGang runs jobs under gang scheduling.
func ScheduleGang(nodes int, jobs []*Job, cfg GangConfig) (SchedResult, error) {
	return sched.SimulateGang(nodes, jobs, cfg)
}

// ---- faults ----

// FaultSystem describes an N-node cluster's failure behavior.
type FaultSystem = fault.System

// Checkpoint describes a checkpointed execution.
type Checkpoint = fault.Checkpoint

// CheckpointResult summarizes checkpointed executions.
type CheckpointResult = fault.Result

// Young/Daly optimal checkpoint intervals.
var (
	YoungInterval = fault.YoungInterval
	DalyInterval  = fault.DalyInterval
)

// Distributions for lifetimes, repairs, and workloads.
type (
	// Dist is a sampleable distribution.
	Dist = stats.Dist
	// Exponential has rate events per unit time.
	Exponential = stats.Exponential
	// Weibull models infant mortality for Shape < 1.
	Weibull = stats.Weibull
	// LogUniform is uniform in log space.
	LogUniform = stats.LogUniform
	// ConstantDist always returns V.
	ConstantDist = stats.Constant
)

// ---- allocation ----

// NodeAllocator places jobs onto specific nodes.
type NodeAllocator = alloc.Allocator

// Allocators.
var (
	// NewScatterAllocator allocates any free nodes, lowest ids first.
	NewScatterAllocator = alloc.NewScatter
	// NewRandomScatterAllocator allocates uniformly random free nodes.
	NewRandomScatterAllocator = alloc.NewRandomScatter
	// NewContiguousTorusAllocator allocates axis-aligned boxes on a torus.
	NewContiguousTorusAllocator = alloc.NewContiguousTorus
)

// AllocResult summarizes an allocation-aware FCFS run.
type AllocResult = alloc.Result

// ScheduleWithPlacement runs jobs FCFS with explicit node placement.
func ScheduleWithPlacement(a NodeAllocator, g *TopologyGraph, jobs []*Job) (AllocResult, error) {
	return alloc.SimulateFCFS(a, g, jobs)
}

// TopologyGraph is an interconnect topology with deterministic routing
// and failure injection.
type TopologyGraph = topology.Graph

// Topology builders.
var (
	NewCrossbarTopology  = topology.Crossbar
	NewFatTreeTopology   = topology.FatTree
	NewTorus2DTopology   = topology.Torus2D
	NewTorus3DTopology   = topology.Torus3D
	NewHypercubeTopology = topology.Hypercube
)

// ---- management ----

// HealthMonitor models cluster health monitoring (flat vs tree
// aggregation): collector load, saturation, and failure-detection
// latency, analytic and simulated.
type HealthMonitor = mgmt.Monitor

// ---- storage ----

// Disk models one rotating commodity disk.
type Disk = storage.Disk

// DiskArray is a stripe set of identical disks.
type DiskArray = storage.Array

// IOSystem is a cluster I/O subsystem (node-local scratch or shared
// parallel-FS servers); its CheckpointTime derives the delta in Young's
// formula from hardware.
type IOSystem = storage.System

// I/O system modes.
const (
	IOLocalScratch  = storage.LocalScratch
	IOSharedServers = storage.SharedServers
)

// IDE2002 is the 2002 commodity disk (~40 MB/s, ~9 ms seek).
var IDE2002 = storage.IDE2002

// ---- cluster configurations ----

// ClusterSpec names a buildable configuration.
type ClusterSpec = cluster.Spec

// ClusterMetrics are the system-level consequences of a spec.
type ClusterMetrics = cluster.Metrics

// Constraint bounds a configuration search (budget, power, floor space).
type Constraint = cluster.Constraint

// BuildCluster materializes a spec against a roadmap.
func BuildCluster(s ClusterSpec, r *Roadmap) (ClusterMetrics, error) { return cluster.Build(s, r) }

// FitLargest returns the largest configuration satisfying a constraint.
func FitLargest(year float64, a Arch, fabric string, r *Roadmap, c Constraint) (ClusterMetrics, error) {
	return cluster.FitLargest(year, a, fabric, r, c)
}

// ---- trajectory explorer ----

// Scenario bundles projection assumptions.
type Scenario = core.Scenario

// Explorer projects scenarios under a constraint across years.
type Explorer = core.Explorer

// Objective selects what the explorer maximizes.
type Objective = core.Objective

// Objectives.
const (
	ObjectiveLinpack = core.Linpack
	ObjectivePeak    = core.Peak
)

// Crossing reports when a scenario reaches a target.
type Crossing = core.Crossing

// WaterfallStep is one rung of the innovation decomposition.
type WaterfallStep = core.WaterfallStep

// FrontierPoint is one Pareto-optimal configuration from
// Explorer.Frontier.
type FrontierPoint = core.FrontierPoint

// Built-in scenarios.
var (
	MooreOnly      = core.MooreOnly
	BladeScenario  = core.BladeScenario
	CMPScenario    = core.CMPScenario
	SoCScenario    = core.SoCScenario
	PIMScenario    = core.PIMScenario
	FabricScenario = core.FabricScenario
	AllInnovations = core.AllInnovations
	Scenarios      = core.Scenarios
)

// ---- experiments ----

// ExperimentTable is one experiment's output.
type ExperimentTable = experiments.Table

// Experiments returns the full E1-E12 suite.
func Experiments() []experiments.Spec { return experiments.All() }

// RunExperiments executes the whole suite sequentially, printing tables
// to w. It is RunExperimentsParallel with one worker.
func RunExperiments(w io.Writer, quick bool) ([]*ExperimentTable, error) {
	return experiments.RunAll(w, quick)
}

// RunExperimentsParallel executes the whole suite on a bounded worker
// pool (workers <= 0 selects one per CPU), printing tables to w in suite
// order. The experiments are independent, so output bytes are identical
// for any worker count; only wall clock changes. A failing experiment
// does not stop the others: its slot in the returned slice is nil and
// the joined error names it.
func RunExperimentsParallel(w io.Writer, quick bool, workers int) ([]*ExperimentTable, error) {
	return experiments.RunAllParallel(w, quick, workers)
}
